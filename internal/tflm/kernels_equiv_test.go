package tflm

import (
	"fmt"
	"math/rand"
	"testing"
)

// Golden-equivalence tests: the im2col/GEMM kernels must be bit-exact with
// the scalar reference kernels in op_ref.go over randomized geometries,
// paddings, strides, activations and quantization parameters.

type convCase struct {
	batches, inH, inW, inC int
	outC, kH, kW           int
	strideH, strideW       int
	pad                    Padding
	act                    Activation
}

func convCases() []convCase {
	return []convCase{
		{1, 49, 43, 1, 8, 10, 8, 2, 2, PaddingSame, ActReLU}, // paper tiny_conv layer
		{1, 7, 9, 3, 5, 3, 3, 1, 1, PaddingSame, ActNone},    // odd sizes, SAME
		{1, 7, 9, 3, 5, 3, 3, 1, 1, PaddingValid, ActNone},   // same, VALID
		{2, 12, 10, 4, 6, 5, 4, 2, 3, PaddingSame, ActReLU6}, // multi-batch, mixed strides
		{1, 5, 5, 2, 3, 5, 5, 1, 1, PaddingSame, ActReLU},    // kernel == input
		{1, 4, 4, 1, 2, 6, 6, 2, 2, PaddingSame, ActNone},    // kernel larger than input
		{3, 9, 6, 2, 4, 1, 1, 1, 1, PaddingValid, ActNone},   // 1×1 pointwise
		{1, 16, 16, 3, 7, 3, 5, 3, 2, PaddingValid, ActReLU}, // strided VALID
		{1, 10, 10, 5, 1, 2, 2, 1, 2, PaddingSame, ActReLU6}, // single filter
	}
}

func randQuantTensor(r *rand.Rand, name string, shape []int, scale float64, zp int32) *Tensor {
	t := &Tensor{Name: name, Type: Int8, Shape: shape, Quant: &QuantParams{Scale: scale, ZeroPoint: zp}}
	t.Alloc()
	for i := range t.I8 {
		t.I8[i] = int8(r.Intn(256) - 128)
	}
	return t
}

func randFloatTensor(r *rand.Rand, name string, shape []int) *Tensor {
	t := &Tensor{Name: name, Type: Float32, Shape: shape}
	t.Alloc()
	for i := range t.F32 {
		t.F32[i] = float32(r.NormFloat64())
	}
	return t
}

func convOutShape(c convCase) []int {
	outH, _ := convOutputSize(c.inH, c.kH, c.strideH, c.pad)
	outW, _ := convOutputSize(c.inW, c.kW, c.strideW, c.pad)
	return []int{c.batches, outH, outW, c.outC}
}

func TestConv2DInt8GemmMatchesRef(t *testing.T) {
	for ci, c := range convCases() {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(1000 + ci)))
			inZP := int32(r.Intn(256) - 128)
			in := randQuantTensor(r, "in", []int{c.batches, c.inH, c.inW, c.inC}, 0.5+r.Float64(), inZP)
			w := randQuantTensor(r, "w", []int{c.outC, c.kH, c.kW, c.inC}, 0.01+0.2*r.Float64(), 0)
			bias := &Tensor{Name: "b", Type: Int32, Shape: []int{c.outC}}
			bias.Alloc()
			for i := range bias.I32 {
				bias.I32[i] = int32(r.Intn(2048) - 1024)
			}
			outShape := convOutShape(c)
			mk := func() *Tensor {
				o := &Tensor{Name: "out", Type: Int8, Shape: outShape, Quant: &QuantParams{Scale: 0.1 + r.Float64(), ZeroPoint: int32(r.Intn(256) - 128)}}
				o.Alloc()
				return o
			}
			got, want := mk(), mk()
			want.Quant = got.Quant // identical requantization
			p := Conv2DParams{StrideH: c.strideH, StrideW: c.strideW, Padding: c.pad, Activation: c.act}
			if err := evalConv2D(in, w, bias, got, p); err != nil {
				t.Fatalf("gemm path: %v", err)
			}
			if err := evalConv2DInt8Ref(in, w, bias, want, p); err != nil {
				t.Fatalf("ref path: %v", err)
			}
			for i := range got.I8 {
				if got.I8[i] != want.I8[i] {
					t.Fatalf("element %d: gemm %d != ref %d", i, got.I8[i], want.I8[i])
				}
			}
		})
	}
}

func TestConv2DFloatGemmMatchesRef(t *testing.T) {
	for ci, c := range convCases() {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(2000 + ci)))
			in := randFloatTensor(r, "in", []int{c.batches, c.inH, c.inW, c.inC})
			w := randFloatTensor(r, "w", []int{c.outC, c.kH, c.kW, c.inC})
			bias := randFloatTensor(r, "b", []int{c.outC})
			outShape := convOutShape(c)
			got := &Tensor{Name: "out", Type: Float32, Shape: outShape}
			got.Alloc()
			want := &Tensor{Name: "out", Type: Float32, Shape: outShape}
			want.Alloc()
			p := Conv2DParams{StrideH: c.strideH, StrideW: c.strideW, Padding: c.pad, Activation: c.act}
			if err := evalConv2D(in, w, bias, got, p); err != nil {
				t.Fatalf("gemm path: %v", err)
			}
			if err := evalConv2DFloatRef(in, w, bias, want, p); err != nil {
				t.Fatalf("ref path: %v", err)
			}
			for i := range got.F32 {
				if got.F32[i] != want.F32[i] {
					t.Fatalf("element %d: gemm %v != ref %v", i, got.F32[i], want.F32[i])
				}
			}
		})
	}
}

func TestDepthwiseConv2DOptMatchesRef(t *testing.T) {
	cases := []struct {
		batches, inH, inW, inC int
		mul, kH, kW            int
		strideH, strideW       int
		pad                    Padding
		act                    Activation
	}{
		{1, 8, 8, 4, 1, 3, 3, 1, 1, PaddingSame, ActNone},
		{1, 8, 8, 4, 2, 3, 3, 1, 1, PaddingSame, ActReLU},
		{2, 11, 7, 3, 1, 5, 3, 2, 2, PaddingValid, ActNone},
		{1, 6, 6, 2, 3, 4, 4, 3, 1, PaddingSame, ActReLU6},
		{1, 5, 5, 1, 1, 7, 7, 1, 1, PaddingSame, ActNone}, // kernel larger than input
		// inC == 1 geometries ride the SWAR interior (contiguous reduction
		// axis): single and multi depth-multiplier, ragged kW % 3, strides,
		// and a large all-interior VALID sweep.
		{1, 12, 12, 1, 1, 3, 3, 1, 1, PaddingSame, ActNone},
		{1, 14, 13, 1, 4, 3, 5, 1, 1, PaddingSame, ActReLU},
		{2, 16, 11, 1, 3, 4, 7, 2, 3, PaddingSame, ActReLU6},
		{1, 20, 20, 1, 2, 5, 8, 2, 2, PaddingValid, ActNone},
	}
	for ci, c := range cases {
		t.Run(fmt.Sprintf("case%d", ci), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(3000 + ci)))
			outC := c.inC * c.mul
			inZP := int32(r.Intn(256) - 128)
			in := randQuantTensor(r, "in", []int{c.batches, c.inH, c.inW, c.inC}, 0.5+r.Float64(), inZP)
			w := randQuantTensor(r, "w", []int{1, c.kH, c.kW, outC}, 0.01+0.2*r.Float64(), 0)
			bias := &Tensor{Name: "b", Type: Int32, Shape: []int{outC}}
			bias.Alloc()
			for i := range bias.I32 {
				bias.I32[i] = int32(r.Intn(2048) - 1024)
			}
			outH, _ := convOutputSize(c.inH, c.kH, c.strideH, c.pad)
			outW, _ := convOutputSize(c.inW, c.kW, c.strideW, c.pad)
			outShape := []int{c.batches, outH, outW, outC}
			oq := &QuantParams{Scale: 0.1 + r.Float64(), ZeroPoint: int32(r.Intn(256) - 128)}
			got := &Tensor{Name: "out", Type: Int8, Shape: outShape, Quant: oq}
			got.Alloc()
			want := &Tensor{Name: "out", Type: Int8, Shape: outShape, Quant: oq}
			want.Alloc()
			p := Conv2DParams{StrideH: c.strideH, StrideW: c.strideW, Padding: c.pad, Activation: c.act, DepthMultiplier: c.mul}
			if err := evalDepthwiseConv2D(in, w, bias, got, p); err != nil {
				t.Fatalf("opt path: %v", err)
			}
			if err := evalDepthwiseConv2DRef(in, w, bias, want, p); err != nil {
				t.Fatalf("ref path: %v", err)
			}
			for i := range got.I8 {
				if got.I8[i] != want.I8[i] {
					t.Fatalf("element %d: opt %d != ref %d", i, got.I8[i], want.I8[i])
				}
			}
		})
	}
}

func TestFullyConnectedGemmMatchesRef(t *testing.T) {
	cases := []struct {
		batches, inN, outN int
		act                Activation
	}{
		{1, 17, 5, ActNone},
		{1, 4400, 12, ActNone}, // tiny_conv FC size
		{3, 64, 9, ActReLU},
		{2, 33, 7, ActReLU6},
		{1, 1, 1, ActNone},
	}
	for ci, c := range cases {
		t.Run(fmt.Sprintf("int8_case%d", ci), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(4000 + ci)))
			inZP := int32(r.Intn(256) - 128)
			in := randQuantTensor(r, "in", []int{c.batches, c.inN}, 0.5+r.Float64(), inZP)
			w := randQuantTensor(r, "w", []int{c.outN, c.inN}, 0.01+0.2*r.Float64(), 0)
			bias := &Tensor{Name: "b", Type: Int32, Shape: []int{c.outN}}
			bias.Alloc()
			for i := range bias.I32 {
				bias.I32[i] = int32(r.Intn(2048) - 1024)
			}
			oq := &QuantParams{Scale: 0.1 + r.Float64(), ZeroPoint: int32(r.Intn(256) - 128)}
			got := &Tensor{Name: "out", Type: Int8, Shape: []int{c.batches, c.outN}, Quant: oq}
			got.Alloc()
			want := &Tensor{Name: "out", Type: Int8, Shape: []int{c.batches, c.outN}, Quant: oq}
			want.Alloc()
			p := FullyConnectedParams{Activation: c.act}
			if err := evalFullyConnected(in, w, bias, got, p); err != nil {
				t.Fatalf("gemm path: %v", err)
			}
			if err := evalFullyConnectedRef(in, w, bias, want, p); err != nil {
				t.Fatalf("ref path: %v", err)
			}
			for i := range got.I8 {
				if got.I8[i] != want.I8[i] {
					t.Fatalf("element %d: gemm %d != ref %d", i, got.I8[i], want.I8[i])
				}
			}
		})
		t.Run(fmt.Sprintf("float_case%d", ci), func(t *testing.T) {
			r := rand.New(rand.NewSource(int64(5000 + ci)))
			in := randFloatTensor(r, "in", []int{c.batches, c.inN})
			w := randFloatTensor(r, "w", []int{c.outN, c.inN})
			bias := randFloatTensor(r, "b", []int{c.outN})
			got := &Tensor{Name: "out", Type: Float32, Shape: []int{c.batches, c.outN}}
			got.Alloc()
			want := &Tensor{Name: "out", Type: Float32, Shape: []int{c.batches, c.outN}}
			want.Alloc()
			p := FullyConnectedParams{Activation: c.act}
			if err := evalFullyConnected(in, w, bias, got, p); err != nil {
				t.Fatalf("gemm path: %v", err)
			}
			if err := evalFullyConnectedRef(in, w, bias, want, p); err != nil {
				t.Fatalf("ref path: %v", err)
			}
			for i := range got.F32 {
				if got.F32[i] != want.F32[i] {
					t.Fatalf("element %d: gemm %v != ref %v", i, got.F32[i], want.F32[i])
				}
			}
		})
	}
}

// TestInterpreterInvokeMatchesRefKernels runs the whole tiny_conv graph
// through the prepped interpreter fast paths and checks the output against
// per-node reference kernel evaluation.
func TestInterpreterInvokeMatchesRefKernels(t *testing.T) {
	model, err := BuildRandomTinyConv(2, 99)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := BuildRandomTinyConv(2, 99)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := NewInterpreter(ref)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(7))
	for i := range ip.Input(0).I8 {
		v := int8(r.Intn(256) - 128)
		ip.Input(0).I8[i] = v
		rp.Input(0).I8[i] = v
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	// Evaluate the reference model with the scalar kernels, node by node.
	for _, n := range ref.Nodes {
		var err error
		switch n.Op {
		case OpConv2D:
			err = evalConv2DInt8Ref(ref.Tensor(n.Inputs[0]), ref.Tensor(n.Inputs[1]), ref.Tensor(n.Inputs[2]), ref.Tensor(n.Outputs[0]), n.Params.(Conv2DParams))
		case OpFullyConnected:
			err = evalFullyConnectedRef(ref.Tensor(n.Inputs[0]), ref.Tensor(n.Inputs[1]), ref.Tensor(n.Inputs[2]), ref.Tensor(n.Outputs[0]), n.Params.(FullyConnectedParams))
		case OpReshape:
			err = evalReshape(ref.Tensor(n.Inputs[0]), ref.Tensor(n.Outputs[0]))
		case OpSoftmax:
			p, _ := n.Params.(SoftmaxParams)
			err = evalSoftmax(ref.Tensor(n.Inputs[0]), ref.Tensor(n.Outputs[0]), p)
		default:
			t.Fatalf("unexpected op %v in tiny_conv", n.Op)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := range ip.Output(0).I8 {
		if ip.Output(0).I8[i] != rp.Output(0).I8[i] {
			t.Fatalf("output %d: interpreter %d != ref %d", i, ip.Output(0).I8[i], rp.Output(0).I8[i])
		}
	}
}

// TestConv2DInt8OutOfRangeZeroPoint: QuantParams.ZeroPoint is an int32 that
// nothing validates; an input ZP outside the int8 range cannot be used as
// im2col padding fill, so those convolutions must take the exact scalar
// path and still match the reference bit-for-bit.
func TestConv2DInt8OutOfRangeZeroPoint(t *testing.T) {
	for _, zp := range []int32{200, -300, 1 << 20} {
		r := rand.New(rand.NewSource(int64(zp)))
		c := convCase{1, 9, 7, 2, 4, 3, 3, 1, 1, PaddingSame, ActNone}
		in := randQuantTensor(r, "in", []int{c.batches, c.inH, c.inW, c.inC}, 0.5, zp)
		w := randQuantTensor(r, "w", []int{c.outC, c.kH, c.kW, c.inC}, 0.05, 0)
		bias := &Tensor{Name: "b", Type: Int32, Shape: []int{c.outC}}
		bias.Alloc()
		outShape := convOutShape(c)
		oq := &QuantParams{Scale: 0.3, ZeroPoint: 0}
		got := &Tensor{Name: "out", Type: Int8, Shape: outShape, Quant: oq}
		got.Alloc()
		want := &Tensor{Name: "out", Type: Int8, Shape: outShape, Quant: oq}
		want.Alloc()
		p := Conv2DParams{StrideH: c.strideH, StrideW: c.strideW, Padding: c.pad}
		if err := evalConv2D(in, w, bias, got, p); err != nil {
			t.Fatalf("zp=%d: %v", zp, err)
		}
		if err := evalConv2DInt8Ref(in, w, bias, want, p); err != nil {
			t.Fatalf("zp=%d ref: %v", zp, err)
		}
		for i := range got.I8 {
			if got.I8[i] != want.I8[i] {
				t.Fatalf("zp=%d element %d: %d != ref %d", zp, i, got.I8[i], want.I8[i])
			}
		}
	}
}

// TestInterpreterDynamicWeightsNotPrepped: when a graph produces its own
// weight tensor at runtime (legal per Validate), the interpreter must not
// bake zero-point corrections from the unfilled tensor at plan time — the
// node has to fall back to per-Invoke evaluation of the live weights.
func TestInterpreterDynamicWeightsNotPrepped(t *testing.T) {
	inQ := &QuantParams{Scale: 0.05, ZeroPoint: -128} // nonzero inZP makes stale acc0 visible
	wQ := &QuantParams{Scale: 0.02, ZeroPoint: 0}
	outQ := &QuantParams{Scale: 0.1, ZeroPoint: 3}
	x := &Tensor{Name: "x", Type: Int8, Shape: []int{1, 4}, Quant: inQ}
	wSrc := &Tensor{Name: "w_src", Type: Int8, Shape: []int{3, 4}, Quant: wQ}
	w := &Tensor{Name: "w", Type: Int8, Shape: []int{3, 4}, Quant: wQ}
	bias := &Tensor{Name: "b", Type: Int32, Shape: []int{3}, IsConst: true}
	bias.Alloc()
	copy(bias.I32, []int32{10, -20, 30})
	out := &Tensor{Name: "out", Type: Int8, Shape: []int{1, 3}, Quant: outQ}
	m := &Model{
		Tensors: []*Tensor{x, wSrc, w, bias, out},
		Nodes: []Node{
			{Op: OpReshape, Inputs: []int{1}, Outputs: []int{2}, Params: ReshapeParams{NewShape: []int{3, 4}}},
			{Op: OpFullyConnected, Inputs: []int{0, 2, 3}, Outputs: []int{4}, Params: FullyConnectedParams{}},
		},
		Inputs:  []int{0, 1},
		Outputs: []int{4},
	}
	ip, err := NewInterpreter(m)
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(11))
	for i := range x.I8 {
		x.I8[i] = int8(r.Intn(256) - 128)
	}
	for i := range wSrc.I8 {
		wSrc.I8[i] = int8(r.Intn(256) - 128)
	}
	if err := ip.Invoke(); err != nil {
		t.Fatal(err)
	}
	// Reference: the same FC over the weights the graph produced at runtime.
	wRef := &Tensor{Name: "w", Type: Int8, Shape: []int{3, 4}, Quant: wQ, IsConst: true}
	wRef.Alloc()
	copy(wRef.I8, wSrc.I8)
	want := &Tensor{Name: "out", Type: Int8, Shape: []int{1, 3}, Quant: outQ}
	want.Alloc()
	if err := evalFullyConnectedRef(x, wRef, bias, want, FullyConnectedParams{}); err != nil {
		t.Fatal(err)
	}
	for i := range out.I8 {
		if out.I8[i] != want.I8[i] {
			t.Fatalf("output %d: interpreter %d != ref %d (stale plan-time weight prep?)", i, out.I8[i], want.I8[i])
		}
	}
}

// TestInvokeZeroAlloc is the ISSUE acceptance criterion: a prepped
// interpreter's Invoke performs no heap allocations.
func TestInvokeZeroAlloc(t *testing.T) {
	model, err := BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	ip, err := NewInterpreter(model)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ip.Input(0).I8 {
		ip.Input(0).I8[i] = int8(i % 251)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if err := ip.Invoke(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Invoke allocates %v times per run, want 0", allocs)
	}
}

func TestArgmaxEmptyAndNil(t *testing.T) {
	if got := Argmax(nil); got != -1 {
		t.Fatalf("Argmax(nil) = %d, want -1", got)
	}
	empty := &Tensor{Name: "e", Type: Int8, Shape: []int{0}}
	if got := Argmax(empty); got != -1 {
		t.Fatalf("Argmax(empty) = %d, want -1", got)
	}
	unallocated := &Tensor{Name: "u", Type: Float32, Shape: []int{4}}
	if got := Argmax(unallocated); got != -1 {
		t.Fatalf("Argmax(unallocated) = %d, want -1", got)
	}
	v := &Tensor{Name: "v", Type: Int8, Shape: []int{4}}
	v.Alloc()
	copy(v.I8, []int8{-3, 9, 9, 1})
	if got := Argmax(v); got != 1 {
		t.Fatalf("Argmax = %d, want 1 (first max wins)", got)
	}
}

func TestModelCloneSharesWeightsOnly(t *testing.T) {
	m, err := BuildRandomTinyConv(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	c := m.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, t0 := range m.Tensors {
		t1 := c.Tensors[i]
		if t0.IsConst {
			if t0 != t1 {
				t.Fatalf("const tensor %q not shared", t0.Name)
			}
			continue
		}
		if t0 == t1 {
			t.Fatalf("activation tensor %q shared between clones", t0.Name)
		}
	}
	// Two interpreters over clones must produce independent, equal results.
	ipA, err := NewInterpreter(c)
	if err != nil {
		t.Fatal(err)
	}
	ipB, err := NewInterpreter(m.Clone())
	if err != nil {
		t.Fatal(err)
	}
	for i := range ipA.Input(0).I8 {
		ipA.Input(0).I8[i] = int8(i % 127)
		ipB.Input(0).I8[i] = int8(i % 127)
	}
	if err := ipA.Invoke(); err != nil {
		t.Fatal(err)
	}
	if err := ipB.Invoke(); err != nil {
		t.Fatal(err)
	}
	for i := range ipA.Output(0).I8 {
		if ipA.Output(0).I8[i] != ipB.Output(0).I8[i] {
			t.Fatalf("clone outputs diverge at %d", i)
		}
	}
}
