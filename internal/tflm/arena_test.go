package tflm

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// chainModel builds a linear chain of Reshape nodes through n activation
// tensors of the given sizes (bytes must be multiples of 4 for float32).
func chainModel(t *testing.T, elemCounts []int) *Model {
	t.Helper()
	b := NewBuilder("chain", 1)
	prev := b.Tensor(&Tensor{Name: "t0", Type: Float32, Shape: []int{elemCounts[0]}})
	b.Input(prev)
	for i := 1; i < len(elemCounts); i++ {
		// Keep element count constant per Reshape requirement by chaining
		// same-size tensors; vary only lifetimes.
		cur := b.Tensor(&Tensor{Name: "t", Type: Float32, Shape: []int{elemCounts[i]}})
		b.Node(OpReshape, ReshapeParams{NewShape: []int{elemCounts[i]}}, []int{prev}, []int{cur})
		prev = cur
	}
	b.Output(prev)
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestArenaReusesMemoryInChain(t *testing.T) {
	// A chain of 6 same-sized tensors: at any instant only two are live, so
	// the arena must be far smaller than the sum of all tensors.
	sizes := []int{1000, 1000, 1000, 1000, 1000, 1000}
	m := chainModel(t, sizes)
	plan, err := PlanArena(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(m); err != nil {
		t.Fatal(err)
	}
	perTensor := 1000 * 4
	if plan.Total > 3*perTensor {
		t.Fatalf("arena %d bytes, expected at most ~2 live tensors (%d)", plan.Total, 2*perTensor)
	}
	if plan.Total < 2*perTensor {
		t.Fatalf("arena %d bytes cannot hold 2 live tensors", plan.Total)
	}
}

func TestArenaPlanTinyConvShape(t *testing.T) {
	m := testTinyConvModel(t, 1)
	plan, err := PlanArena(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Check(m); err != nil {
		t.Fatal(err)
	}
	// Input (49*43) + conv output (25*22*8) dominate; everything must fit in
	// well under the sum of all activations.
	var sum int
	for ti := range plan.Offsets {
		sum += m.Tensors[ti].ByteSize()
	}
	if plan.Total > sum {
		t.Fatalf("arena %d larger than no-reuse total %d", plan.Total, sum)
	}
}

// TestArenaNoOverlapProperty: random fan-out graphs keep the invariant that
// concurrently-live tensors never share bytes.
func TestArenaNoOverlapProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder("rand", 1)
		n := 3 + r.Intn(8)
		ids := make([]int, 0, n)
		in := b.Tensor(&Tensor{Name: "in", Type: Int8, Shape: []int{8 + r.Intn(64)}})
		b.Input(in)
		ids = append(ids, in)
		for i := 1; i < n; i++ {
			src := ids[r.Intn(len(ids))]
			elems := m1(b, src)
			dst := b.Tensor(&Tensor{Name: "t", Type: Int8, Shape: []int{elems}})
			b.Node(OpReshape, ReshapeParams{NewShape: []int{elems}}, []int{src}, []int{dst})
			ids = append(ids, dst)
		}
		b.Output(ids[len(ids)-1])
		m, err := b.Build()
		if err != nil {
			return false
		}
		plan, err := PlanArena(m)
		if err != nil {
			return false
		}
		return plan.Check(m) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// m1 returns the element count of tensor src in builder b.
func m1(b *Builder, src int) int {
	return b.m.Tensors[src].NumElements()
}

func TestPlanArenaRejectsUnproducedRead(t *testing.T) {
	m := &Model{
		Tensors: []*Tensor{
			{Name: "a", Type: Int8, Shape: []int{4}},
			{Name: "b", Type: Int8, Shape: []int{4}},
		},
		Nodes:   []Node{{Op: OpReshape, Params: ReshapeParams{}, Inputs: []int{1}, Outputs: []int{0}}},
		Inputs:  []int{0},
		Outputs: []int{0},
	}
	if _, err := PlanArena(m); err == nil {
		t.Fatal("planned a graph reading an unproduced tensor")
	}
}
