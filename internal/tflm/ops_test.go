package tflm

import (
	"math"
	"math/rand"
	"testing"
)

// quantizeTensorF32 builds an int8 tensor approximating src with calibrated
// parameters; returns the tensor for kernel-level parity tests.
func quantizeTensorF32(name string, shape []int, src []float32) *Tensor {
	minV, maxV := 0.0, 0.0
	for _, v := range src {
		if float64(v) < minV {
			minV = float64(v)
		}
		if float64(v) > maxV {
			maxV = float64(v)
		}
	}
	q := ChooseQuantParams(minV, maxV)
	t := &Tensor{Name: name, Type: Int8, Shape: shape, Quant: &q}
	t.Alloc()
	for i, v := range src {
		t.I8[i] = q.Quantize(float64(v))
	}
	return t
}

// quantizeWeights uses symmetric int8 quantization as TFLite does.
func quantizeWeights(name string, shape []int, src []float32) *Tensor {
	absMax := 0.0
	for _, v := range src {
		if a := math.Abs(float64(v)); a > absMax {
			absMax = a
		}
	}
	q := SymmetricWeightParams(absMax)
	t := &Tensor{Name: name, Type: Int8, Shape: shape, Quant: &q, IsConst: true}
	t.Alloc()
	for i, v := range src {
		t.I8[i] = q.Quantize(float64(v))
	}
	return t
}

// quantizeBias produces the int32 bias with scale inScale*wScale.
func quantizeBias(name string, src []float32, inScale, wScale float64) *Tensor {
	t := &Tensor{Name: name, Type: Int32, Shape: []int{len(src)}, IsConst: true,
		Quant: &QuantParams{Scale: inScale * wScale}}
	t.Alloc()
	for i, v := range src {
		t.I32[i] = int32(math.Round(float64(v) / (inScale * wScale)))
	}
	return t
}

func randomFloats(r *rand.Rand, n int, scale float64) []float32 {
	out := make([]float32, n)
	for i := range out {
		out[i] = float32((r.Float64()*2 - 1) * scale)
	}
	return out
}

func TestConvOutputSize(t *testing.T) {
	// The paper's tiny_conv: 49×43 input, 10×8 filter, stride 2, SAME.
	h, padT := convOutputSize(49, 10, 2, PaddingSame)
	w, padL := convOutputSize(43, 8, 2, PaddingSame)
	if h != 25 || w != 22 {
		t.Fatalf("tiny_conv output %dx%d, want 25x22", h, w)
	}
	if padT != 4 || padL != 3 {
		t.Fatalf("padding %d,%d", padT, padL)
	}
	hv, padV := convOutputSize(49, 10, 2, PaddingValid)
	if hv != 20 || padV != 0 {
		t.Fatalf("VALID output %d pad %d", hv, padV)
	}
}

func TestConv2DFloatKnownValues(t *testing.T) {
	// 1x3x3x1 input, one 2x2 filter, stride 1, VALID: plain cross-correlation.
	in := &Tensor{Name: "in", Type: Float32, Shape: []int{1, 3, 3, 1},
		F32: []float32{1, 2, 3, 4, 5, 6, 7, 8, 9}}
	w := &Tensor{Name: "w", Type: Float32, Shape: []int{1, 2, 2, 1},
		F32: []float32{1, 0, 0, 1}}
	bias := &Tensor{Name: "b", Type: Float32, Shape: []int{1}, F32: []float32{0.5}}
	out := &Tensor{Name: "out", Type: Float32, Shape: []int{1, 2, 2, 1}}
	out.Alloc()
	err := evalConv2D(in, w, bias, out, Conv2DParams{StrideH: 1, StrideW: 1, Padding: PaddingValid})
	if err != nil {
		t.Fatal(err)
	}
	want := []float32{1 + 5 + 0.5, 2 + 6 + 0.5, 4 + 8 + 0.5, 5 + 9 + 0.5}
	for i := range want {
		if out.F32[i] != want[i] {
			t.Errorf("out[%d] = %v, want %v", i, out.F32[i], want[i])
		}
	}
}

func TestConv2DInt8MatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	inF := randomFloats(r, 1*9*7*3, 1.0)
	wF := randomFloats(r, 4*3*3*3, 0.5)
	bF := randomFloats(r, 4, 0.2)

	// Float reference.
	fin := &Tensor{Type: Float32, Shape: []int{1, 9, 7, 3}, F32: inF}
	fw := &Tensor{Type: Float32, Shape: []int{4, 3, 3, 3}, F32: wF}
	fb := &Tensor{Type: Float32, Shape: []int{4}, F32: bF}
	fout := &Tensor{Type: Float32, Shape: []int{1, 5, 4, 4}}
	fout.Alloc()
	p := Conv2DParams{StrideH: 2, StrideW: 2, Padding: PaddingSame, Activation: ActReLU}
	if err := evalConv2D(fin, fw, fb, fout, p); err != nil {
		t.Fatal(err)
	}

	// Quantized path.
	qin := quantizeTensorF32("in", []int{1, 9, 7, 3}, inF)
	qw := quantizeWeights("w", []int{4, 3, 3, 3}, wF)
	qb := quantizeBias("b", bF, qin.Quant.Scale, qw.Quant.Scale)
	outMin, outMax := 0.0, 0.0
	for _, v := range fout.F32 {
		if float64(v) > outMax {
			outMax = float64(v)
		}
		if float64(v) < outMin {
			outMin = float64(v)
		}
	}
	oq := ChooseQuantParams(outMin, outMax)
	qout := &Tensor{Type: Int8, Shape: []int{1, 5, 4, 4}, Quant: &oq}
	qout.Alloc()
	if err := evalConv2D(qin, qw, qb, qout, p); err != nil {
		t.Fatal(err)
	}

	var maxErr float64
	for i := range fout.F32 {
		got := oq.Dequantize(qout.I8[i])
		if e := math.Abs(got - float64(fout.F32[i])); e > maxErr {
			maxErr = e
		}
	}
	// Quantization noise budget: a few output quanta.
	if maxErr > 4*oq.Scale {
		t.Fatalf("max abs error %v exceeds %v", maxErr, 4*oq.Scale)
	}
}

func TestConv2DShapeAndStrideErrors(t *testing.T) {
	in := &Tensor{Type: Float32, Shape: []int{1, 4, 4, 1}}
	in.Alloc()
	w := &Tensor{Type: Float32, Shape: []int{1, 2, 2, 1}}
	w.Alloc()
	b := &Tensor{Type: Float32, Shape: []int{1}}
	b.Alloc()
	out := &Tensor{Type: Float32, Shape: []int{1, 4, 4, 1}}
	out.Alloc()
	if err := evalConv2D(in, w, b, out, Conv2DParams{StrideH: 0, StrideW: 1}); err == nil {
		t.Fatal("zero stride accepted")
	}
	if err := evalConv2D(in, w, b, out, Conv2DParams{StrideH: 2, StrideW: 2, Padding: PaddingSame}); err == nil {
		t.Fatal("wrong output shape accepted")
	}
	wBad := &Tensor{Type: Float32, Shape: []int{1, 2, 2, 3}}
	wBad.Alloc()
	if err := evalConv2D(in, wBad, b, out, Conv2DParams{StrideH: 1, StrideW: 1, Padding: PaddingSame}); err == nil {
		t.Fatal("channel mismatch accepted")
	}
}

func TestFullyConnectedInt8MatchesFloat(t *testing.T) {
	r := rand.New(rand.NewSource(12))
	const inN, outN = 40, 12
	inF := randomFloats(r, inN, 2.0)
	wF := randomFloats(r, outN*inN, 0.3)
	bF := randomFloats(r, outN, 0.5)

	fin := &Tensor{Type: Float32, Shape: []int{1, inN}, F32: inF}
	fw := &Tensor{Type: Float32, Shape: []int{outN, inN}, F32: wF}
	fb := &Tensor{Type: Float32, Shape: []int{outN}, F32: bF}
	fout := &Tensor{Type: Float32, Shape: []int{1, outN}}
	fout.Alloc()
	if err := evalFullyConnected(fin, fw, fb, fout, FullyConnectedParams{}); err != nil {
		t.Fatal(err)
	}

	qin := quantizeTensorF32("in", []int{1, inN}, inF)
	qw := quantizeWeights("w", []int{outN, inN}, wF)
	qb := quantizeBias("b", bF, qin.Quant.Scale, qw.Quant.Scale)
	outMin, outMax := 0.0, 0.0
	for _, v := range fout.F32 {
		if float64(v) > outMax {
			outMax = float64(v)
		}
		if float64(v) < outMin {
			outMin = float64(v)
		}
	}
	oq := ChooseQuantParams(outMin, outMax)
	qout := &Tensor{Type: Int8, Shape: []int{1, outN}, Quant: &oq}
	qout.Alloc()
	if err := evalFullyConnected(qin, qw, qb, qout, FullyConnectedParams{}); err != nil {
		t.Fatal(err)
	}
	for i := range fout.F32 {
		got := oq.Dequantize(qout.I8[i])
		if math.Abs(got-float64(fout.F32[i])) > 4*oq.Scale {
			t.Fatalf("out[%d]: got %v, want %v", i, got, fout.F32[i])
		}
	}
}

func TestFullyConnectedErrors(t *testing.T) {
	in := &Tensor{Type: Float32, Shape: []int{1, 7}}
	in.Alloc()
	w := &Tensor{Type: Float32, Shape: []int{3, 4}}
	w.Alloc()
	b := &Tensor{Type: Float32, Shape: []int{3}}
	b.Alloc()
	out := &Tensor{Type: Float32, Shape: []int{1, 3}}
	out.Alloc()
	if err := evalFullyConnected(in, w, b, out, FullyConnectedParams{}); err == nil {
		t.Fatal("indivisible input accepted")
	}
}

func TestDepthwiseConv2DKnownValues(t *testing.T) {
	// 1x2x2x2 input, 1x1 filter with per-channel weights 1 and 2: a pure
	// per-channel scale. Quantize with unit scales for exact arithmetic.
	unit := QuantParams{Scale: 1, ZeroPoint: 0}
	in := &Tensor{Type: Int8, Shape: []int{1, 2, 2, 2}, Quant: &unit,
		I8: []int8{1, 10, 2, 20, 3, 30, 4, 40}}
	w := &Tensor{Type: Int8, Shape: []int{1, 1, 1, 2}, Quant: &unit, I8: []int8{1, 2}}
	bias := &Tensor{Type: Int32, Shape: []int{2}, I32: []int32{0, 0}}
	out := &Tensor{Type: Int8, Shape: []int{1, 2, 2, 2}, Quant: &unit}
	out.Alloc()
	err := evalDepthwiseConv2D(in, w, bias, out, Conv2DParams{StrideH: 1, StrideW: 1, Padding: PaddingValid, DepthMultiplier: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := []int8{1, 20, 2, 40, 3, 60, 4, 80}
	for i := range want {
		if out.I8[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out.I8[i], want[i])
		}
	}
}

func TestReluQuantizedClampsAtZeroPoint(t *testing.T) {
	q := QuantParams{Scale: 0.5, ZeroPoint: -10}
	in := &Tensor{Type: Int8, Shape: []int{4}, Quant: &q, I8: []int8{-128, -11, -10, 50}}
	out := &Tensor{Type: Int8, Shape: []int{4}, Quant: &q}
	out.Alloc()
	if err := evalRelu(in, out); err != nil {
		t.Fatal(err)
	}
	want := []int8{-10, -10, -10, 50}
	for i := range want {
		if out.I8[i] != want[i] {
			t.Errorf("out[%d] = %d, want %d", i, out.I8[i], want[i])
		}
	}
}

func TestSoftmaxFloat(t *testing.T) {
	in := &Tensor{Type: Float32, Shape: []int{1, 3}, F32: []float32{1, 2, 3}}
	out := &Tensor{Type: Float32, Shape: []int{1, 3}}
	out.Alloc()
	if err := evalSoftmax(in, out, SoftmaxParams{Beta: 1}); err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range out.F32 {
		sum += float64(v)
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("probabilities sum to %v", sum)
	}
	if !(out.F32[2] > out.F32[1] && out.F32[1] > out.F32[0]) {
		t.Fatal("softmax not monotone")
	}
}

func TestSoftmaxInt8(t *testing.T) {
	q := QuantParams{Scale: 0.1, ZeroPoint: 0}
	oq := SoftmaxOutputParams()
	in := &Tensor{Type: Int8, Shape: []int{1, 4}, Quant: &q, I8: []int8{0, 10, 20, 30}}
	out := &Tensor{Type: Int8, Shape: []int{1, 4}, Quant: &oq}
	out.Alloc()
	if err := evalSoftmax(in, out, SoftmaxParams{Beta: 1}); err != nil {
		t.Fatal(err)
	}
	// Dequantized outputs approximately sum to 1 and are ordered.
	var sum float64
	prev := -1.0
	for _, v := range out.I8 {
		p := oq.Dequantize(v)
		if p < prev-1e-9 {
			t.Fatal("int8 softmax not monotone")
		}
		prev = p
		sum += p
	}
	if math.Abs(sum-1) > 0.05 {
		t.Fatalf("int8 softmax sums to %v", sum)
	}
	if Argmax(out) != 3 {
		t.Fatalf("argmax = %d", Argmax(out))
	}
}

func TestMaxAndAvgPool(t *testing.T) {
	unit := QuantParams{Scale: 1, ZeroPoint: 0}
	in := &Tensor{Type: Int8, Shape: []int{1, 2, 2, 1}, Quant: &unit, I8: []int8{1, 3, 5, 7}}
	out := &Tensor{Type: Int8, Shape: []int{1, 1, 1, 1}, Quant: &unit}
	out.Alloc()
	p := PoolParams{FilterH: 2, FilterW: 2, StrideH: 2, StrideW: 2, Padding: PaddingValid}
	if err := evalPool(OpMaxPool2D, in, out, p); err != nil {
		t.Fatal(err)
	}
	if out.I8[0] != 7 {
		t.Fatalf("maxpool = %d", out.I8[0])
	}
	if err := evalPool(OpAvgPool2D, in, out, p); err != nil {
		t.Fatal(err)
	}
	if out.I8[0] != 4 { // (1+3+5+7)/4
		t.Fatalf("avgpool = %d", out.I8[0])
	}
	fin := &Tensor{Type: Float32, Shape: []int{1, 2, 2, 1}, F32: []float32{1, 3, 5, 7}}
	fout := &Tensor{Type: Float32, Shape: []int{1, 1, 1, 1}}
	fout.Alloc()
	if err := evalPool(OpAvgPool2D, fin, fout, p); err != nil {
		t.Fatal(err)
	}
	if fout.F32[0] != 4 {
		t.Fatalf("float avgpool = %v", fout.F32[0])
	}
}

func TestReshapePreservesData(t *testing.T) {
	in := &Tensor{Type: Int8, Shape: []int{2, 3}, I8: []int8{1, 2, 3, 4, 5, 6}}
	out := &Tensor{Type: Int8, Shape: []int{6}}
	out.Alloc()
	if err := evalReshape(in, out); err != nil {
		t.Fatal(err)
	}
	for i := range in.I8 {
		if out.I8[i] != in.I8[i] {
			t.Fatal("reshape altered data")
		}
	}
	bad := &Tensor{Type: Int8, Shape: []int{5}}
	bad.Alloc()
	if err := evalReshape(in, bad); err == nil {
		t.Fatal("element count mismatch accepted")
	}
}
