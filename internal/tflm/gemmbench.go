package tflm

import (
	"fmt"
	"math/rand"
)

// GEMMBench pins one prepped int8 GEMM invocation — packed SWAR panels,
// hoisted requant constants, caller-owned scratch — so the micro-benchmark
// habit survives kernel retunes: BenchmarkGEMMMicroKernel (bench_test.go)
// measures the inner kernel in isolation, without im2col, graph dispatch or
// frontend noise. Not used on any serving path.
type GEMMBench struct {
	mRows int
	a     []int8
	dst   []int8
	pr    *linearPrep
	xb    []uint64
}

// NewGEMMBench builds a deterministic m×n×k int8 GEMM workload. The quant
// parameters are fixed plausible values; inputs and weights cover the full
// int8 range including the −128 extremes.
func NewGEMMBench(m, n, k int, seed int64) (*GEMMBench, error) {
	if m < 1 || n < 1 || k < 1 {
		return nil, fmt.Errorf("tflm: GEMM bench shape %dx%dx%d invalid", m, n, k)
	}
	r := rand.New(rand.NewSource(seed))
	in := &Tensor{Name: "a", Type: Int8, Shape: []int{m, k}, Quant: &QuantParams{Scale: 0.5, ZeroPoint: -7}}
	in.Alloc()
	for i := range in.I8 {
		in.I8[i] = int8(r.Intn(256) - 128)
	}
	w := &Tensor{Name: "w", Type: Int8, Shape: []int{n, k}, Quant: &QuantParams{Scale: 0.02, ZeroPoint: 0}}
	w.Alloc()
	for i := range w.I8 {
		w.I8[i] = int8(r.Intn(256) - 128)
	}
	bias := &Tensor{Name: "b", Type: Int32, Shape: []int{n}}
	bias.Alloc()
	for i := range bias.I32 {
		bias.I32[i] = int32(r.Intn(2048) - 1024)
	}
	out := &Tensor{Name: "out", Type: Int8, Shape: []int{m, n}, Quant: &QuantParams{Scale: 0.1, ZeroPoint: 3}}
	out.Alloc()
	pr, err := prepLinearInt8(in, w, bias, out, ActNone, n, k)
	if err != nil {
		return nil, err
	}
	return &GEMMBench{
		mRows: m,
		a:     in.I8,
		dst:   out.I8,
		pr:    pr,
		xb:    make([]uint64, pr.gemmScratchLen()),
	}, nil
}

// MACs returns the multiply-accumulate count of one Run.
func (gb *GEMMBench) MACs() int { return gb.mRows * gb.pr.n * gb.pr.k }

// Run executes the kernel once over the prepped operands (no allocation).
func (gb *GEMMBench) Run() {
	gemmInt8Requant(gb.mRows, gb.a, gb.dst, gb.pr, gb.xb)
}

// Check verifies the current output against the scalar SWAR reference dot —
// a cheap self-test so a bench refactor cannot silently measure a broken
// kernel.
func (gb *GEMMBench) Check() error {
	n, k := gb.pr.n, gb.pr.k
	for _, m := range []int{0, gb.mRows - 1} {
		for o := 0; o < n; o++ {
			acc := gb.pr.acc0[o]
			row := gb.a[m*k : (m+1)*k]
			wrow := make([]int8, k)
			for i := 0; i < k; i++ {
				// Recover the weight from the packed panel lanes.
				p, j := o/gemmPanel, o%gemmPanel
				g, t := i/swarGroup, i%swarGroup
				q := gb.pr.panels[p*gb.pr.kg+g][j]
				wrow[i] = int8(uint8(q>>(uint(swarGroup-1-t)*swarShift)) ^ swarBias)
			}
			acc += swarDotI8(row, wrow)
			want := int8(clampInt32(gb.pr.mult.Apply(acc)+gb.pr.outZP, gb.pr.lo, gb.pr.hi))
			if got := gb.dst[m*n+o]; got != want {
				return fmt.Errorf("tflm: GEMM bench output [%d,%d] = %d, want %d", m, o, got, want)
			}
		}
	}
	return nil
}
