package tflm

import (
	"fmt"
	"runtime"

	"repro/internal/hw"
)

// Meter receives cycle charges for simulated work. *hw.Core implements it;
// a nil meter means pure functional execution (host-speed, unmetered).
type Meter interface {
	// Charge adds cycles of simulated work to the meter.
	Charge(cycles uint64)
}

// Interpreter executes a model. It owns the arena plan, the allocated
// activation tensors, and all kernel scratch; one interpreter serves
// repeated Invoke calls, exactly like TFLM's MicroInterpreter.
//
// At construction the interpreter "preps" every node it can: requantization
// multipliers are decomposed once, per-filter zero-point corrections
// (bias[oc] - inZP·Σw[oc]) are folded into accumulator seeds, and the
// im2col/softmax scratch is sized to the largest node. Invoke therefore
// performs no heap allocation and no floating-point requant setup on the
// hot path. Prep assumes constant tensors are immutable after construction
// (they are baked into the model); nodes that cannot be prepped — exotic
// shapes, missing quantization — fall back to the unprepped dispatch path
// with identical error behavior.
type Interpreter struct {
	model *Model
	plan  *ArenaPlan
	meter Meter
	// execs[i] runs node i through its prepped fast path; nil entries fall
	// back to evalNode.
	execs []func() error
	// preps[i] records the plan-time state behind execs[i] so other
	// execution modes (the batched InvokeBatch plan) can reuse it without
	// re-deriving geometry or repacking weights.
	preps []any
	// Shared kernel scratch, sized at plan time to the largest consumer
	// (int8 convolutions instead own a dedicated column slab per node, in
	// their convPrep, so the plan-compiled copy program can prefill padding
	// once).
	colF32   []float32
	gemmX    []uint64 // SWAR packed-activation rows for gemmInt8Requant
	smLogits []float64
	smProbs  []float64
	// batch is the optional stacked-utterance plan built by PlanBatch, and
	// batchCleanup the GC backstop that retires its worker group; the
	// handle is stopped and replaced on replan so retired plans (and their
	// slabs) do not stay pinned for the interpreter's lifetime.
	batch        *batchPlan
	batchCleanup *runtime.Cleanup
}

// Per-node prep records stashed by prepNodes for reuse by PlanBatch.
type convPrep struct {
	g  convGeom
	pr *linearPrep
	// prog is the plan-compiled im2col copy program (recordIm2col) and col
	// the node's dedicated, zero-point-prefilled column slab: serial Invoke
	// replays only the surviving contiguous copies — the clip arithmetic
	// and padding fills ran once at prep time. PlanBatch reuses prog with
	// per-shard column slabs.
	prog []colCopy
	col  []int8
}

type fcPrep struct {
	batches, outN, inN int
	pr                 *linearPrep
}

type softmaxPrep struct {
	depth, outer int
	beta         float64
}

// NewInterpreter validates the model, plans the arena, allocates activation
// storage, and preps the kernel fast paths.
func NewInterpreter(m *Model) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanArena(m)
	if err != nil {
		return nil, err
	}
	if err := plan.Check(m); err != nil {
		return nil, err
	}
	for ti := range plan.Offsets {
		m.Tensors[ti].Alloc()
	}
	ip := &Interpreter{model: m, plan: plan}
	ip.prepNodes()
	return ip, nil
}

// prepNodes builds the per-node fast paths and sizes the shared scratch.
// Prep failures are not errors: the node keeps a nil exec and Invoke runs
// it through the generic dispatcher, which reports the same diagnostics the
// unprepped engine would.
func (ip *Interpreter) prepNodes() {
	m := ip.model
	ip.execs = make([]func() error, len(m.Nodes))
	ip.preps = make([]any, len(m.Nodes))
	maxColF32, maxDepth, maxGemmX := 0, 0, 0
	for ni, n := range m.Nodes {
		switch n.Op {
		case OpConv2D:
			p, ok := n.Params.(Conv2DParams)
			if !ok {
				continue
			}
			in, w, bias, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0])
			g, err := resolveConvGeom(in, w, out, p)
			if err != nil {
				continue
			}
			switch in.Type {
			case Int8:
				// acc0 bakes weight/bias contents; only valid when both
				// are model constants (graphs may legally produce them).
				if !w.IsConst || !bias.IsConst {
					continue
				}
				pr, err := prepLinearInt8(in, w, bias, out, p.Activation, g.outC, g.K)
				if err != nil {
					continue
				}
				// Out-of-int8-range zero points can't be packed as padding
				// fill; leave such nodes on the exact scalar fallback.
				if pr.inZP < -128 || pr.inZP > 127 {
					continue
				}
				if n := pr.gemmScratchLen(); n > maxGemmX {
					maxGemmX = n
				}
				cp := &convPrep{g: g, pr: pr, prog: recordIm2col(g), col: make([]int8, g.batches*g.colLen())}
				fillSlice(cp.col, int8(pr.inZP))
				rows := g.batches * g.M
				ip.preps[ni] = cp
				ip.execs[ni] = func() error {
					replayIm2col(cp.prog, cp.col, in.I8, 0)
					gemmInt8Requant(rows, cp.col, out.I8, pr, ip.gemmX)
					return nil
				}
			case Float32:
				if g.colLen() > maxColF32 {
					maxColF32 = g.colLen()
				}
				ip.execs[ni] = func() error {
					convFloatGemm(in, w, bias, out, g, p.Activation, ip.colF32)
					return nil
				}
			}
		case OpDepthwiseConv2D:
			p, ok := n.Params.(Conv2DParams)
			if !ok {
				continue
			}
			in, w, bias, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0])
			if !w.IsConst || !bias.IsConst {
				continue
			}
			dp, err := prepDepthwiseInt8(in, w, bias, out, p)
			if err != nil {
				continue
			}
			ip.execs[ni] = func() error {
				depthwiseInt8Opt(in, w, bias, out, dp)
				return nil
			}
		case OpFullyConnected:
			p, ok := n.Params.(FullyConnectedParams)
			if !ok {
				continue
			}
			in, w, bias, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0])
			batches, outN, inN, err := fcGeom(in, w, out)
			if err != nil {
				continue
			}
			switch in.Type {
			case Int8:
				if !w.IsConst || !bias.IsConst {
					continue
				}
				pr, err := prepLinearInt8(in, w, bias, out, p.Activation, outN, inN)
				if err != nil {
					continue
				}
				if n := pr.gemmScratchLen(); n > maxGemmX {
					maxGemmX = n
				}
				ip.preps[ni] = &fcPrep{batches: batches, outN: outN, inN: inN, pr: pr}
				ip.execs[ni] = func() error {
					gemmInt8Requant(batches, in.I8, out.I8, pr, ip.gemmX)
					return nil
				}
			case Float32:
				ip.execs[ni] = func() error {
					gemmFloat(batches, outN, inN, in.F32, w.F32, bias.F32, p.Activation, out.F32)
					return nil
				}
			}
		case OpSoftmax:
			p, _ := n.Params.(SoftmaxParams)
			in, out := m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0])
			if len(in.Shape) == 0 {
				continue
			}
			depth := in.Shape[len(in.Shape)-1]
			if depth > maxDepth {
				maxDepth = depth
			}
			beta := p.Beta
			if beta == 0 {
				beta = 1
			}
			ip.preps[ni] = &softmaxPrep{depth: depth, outer: in.NumElements() / depth, beta: beta}
			ip.execs[ni] = func() error {
				return evalSoftmaxScratch(in, out, p, ip.smLogits, ip.smProbs)
			}
		}
	}
	if maxGemmX > 0 {
		ip.gemmX = make([]uint64, maxGemmX)
	}
	if maxColF32 > 0 {
		ip.colF32 = make([]float32, maxColF32)
	}
	if maxDepth > 0 {
		ip.smLogits = make([]float64, maxDepth)
		ip.smProbs = make([]float64, maxDepth)
	}
}

// SetMeter routes per-op cycle costs to m (typically the enclave's core).
func (ip *Interpreter) SetMeter(m Meter) { ip.meter = m }

// Model returns the interpreted model.
func (ip *Interpreter) Model() *Model { return ip.model }

// ArenaSize returns the planned activation arena in bytes (peak RAM).
func (ip *Interpreter) ArenaSize() int { return ip.plan.Total }

// ScratchSize returns the bytes of kernel scratch (im2col columns — shared
// for float, per conv node for int8 — SWAR rows, softmax staging) the
// interpreter owns on top of the activation arena.
func (ip *Interpreter) ScratchSize() int {
	total := 4*len(ip.colF32) + 8*len(ip.gemmX) + 8*len(ip.smLogits) + 8*len(ip.smProbs)
	for _, p := range ip.preps {
		if cp, ok := p.(*convPrep); ok {
			total += len(cp.col)
		}
	}
	return total
}

// Input returns the i-th model input tensor.
func (ip *Interpreter) Input(i int) *Tensor { return ip.model.Tensors[ip.model.Inputs[i]] }

// Output returns the i-th model output tensor.
func (ip *Interpreter) Output(i int) *Tensor { return ip.model.Tensors[ip.model.Outputs[i]] }

// Invoke runs the graph once over the current input contents. It performs
// no heap allocations; all scratch was sized at plan time.
func (ip *Interpreter) Invoke() error {
	m := ip.model
	for ni, n := range m.Nodes {
		var err error
		if ex := ip.execs[ni]; ex != nil {
			err = ex()
		} else {
			err = ip.evalNode(n)
		}
		if err != nil {
			return fmt.Errorf("tflm: node %d (%v): %w", ni, n.Op, err)
		}
		if ip.meter != nil {
			ip.meter.Charge(NodeCycles(m, n))
		}
	}
	return nil
}

// evalNode is the fallback for unprepped nodes. Linear ops run the scalar
// reference kernels here: they are exact for any quantization, read live
// (possibly graph-produced) weights, and allocate nothing per Invoke.
func (ip *Interpreter) evalNode(n Node) error {
	m := ip.model
	switch n.Op {
	case OpConv2D:
		return evalConv2DRef(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(Conv2DParams))
	case OpDepthwiseConv2D:
		return evalDepthwiseConv2DRef(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(Conv2DParams))
	case OpFullyConnected:
		return evalFullyConnectedRef(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(FullyConnectedParams))
	case OpSoftmax:
		p, _ := n.Params.(SoftmaxParams)
		return evalSoftmax(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]), p)
	case OpReshape:
		return evalReshape(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]))
	case OpRelu:
		return evalRelu(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]))
	case OpMaxPool2D, OpAvgPool2D:
		return evalPool(n.Op, m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]), n.Params.(PoolParams))
	default:
		return fmt.Errorf("unsupported op %v", n.Op)
	}
}

// NodeCycles estimates the simulated-core cost of one operator application
// using the calibrated hw cost model. The cost model is a property of the
// modeled device, not of the host kernels: the im2col/GEMM rewrite speeds
// up the simulator, it does not change the simulated cycle counts.
func NodeCycles(m *Model, n Node) uint64 {
	switch n.Op {
	case OpConv2D, OpDepthwiseConv2D, OpFullyConnected:
		out := m.Tensor(n.Outputs[0])
		return nodeMACs(m, n)*hw.CyclesPerMAC + uint64(out.NumElements())*hw.CyclesPerActivation
	case OpSoftmax:
		return uint64(m.Tensor(n.Outputs[0]).NumElements()) * hw.CyclesPerSoftmaxTerm
	case OpRelu:
		return uint64(m.Tensor(n.Outputs[0]).NumElements()) * hw.CyclesPerActivation
	case OpReshape:
		return uint64(m.Tensor(n.Outputs[0]).ByteSize()) * hw.CyclesPerByteCopy
	case OpMaxPool2D, OpAvgPool2D:
		p := n.Params.(PoolParams)
		out := m.Tensor(n.Outputs[0])
		return uint64(out.NumElements()) * uint64(p.FilterH*p.FilterW) * hw.CyclesPerActivation
	default:
		return 0
	}
}

// InferenceCycles estimates the total cost of one Invoke.
func InferenceCycles(m *Model) uint64 {
	var total uint64
	for _, n := range m.Nodes {
		total += NodeCycles(m, n)
	}
	return total
}

// ArgmaxI8 returns the index of the maximum element of an int8 slice
// (first maximum wins), or -1 when empty — the slice-level decision rule
// used by batched paths that read stacked output rows.
func ArgmaxI8(xs []int8) int {
	best := -1
	for i, v := range xs {
		if best < 0 || v > xs[best] {
			best = i
		}
	}
	return best
}

// Argmax returns the index of the maximum element of a rank-1-like tensor,
// the classification decision rule of the keyword spotter. A nil, empty, or
// unallocated tensor yields -1.
func Argmax(t *Tensor) int {
	if t == nil {
		return -1
	}
	best := -1
	switch t.Type {
	case Int8:
		best = ArgmaxI8(t.I8)
	case UInt8:
		for i, v := range t.U8 {
			if best < 0 || v > t.U8[best] {
				best = i
			}
		}
	case Float32:
		for i, v := range t.F32 {
			if best < 0 || v > t.F32[best] {
				best = i
			}
		}
	case Int32:
		for i, v := range t.I32 {
			if best < 0 || v > t.I32[best] {
				best = i
			}
		}
	}
	return best
}
