package tflm

import (
	"fmt"

	"repro/internal/hw"
)

// Meter receives cycle charges for simulated work. *hw.Core implements it;
// a nil meter means pure functional execution (host-speed, unmetered).
type Meter interface {
	Charge(cycles uint64)
}

// Interpreter executes a model. It owns the arena plan and the allocated
// activation tensors; one interpreter serves repeated Invoke calls, exactly
// like TFLM's MicroInterpreter.
type Interpreter struct {
	model *Model
	plan  *ArenaPlan
	meter Meter
}

// NewInterpreter validates the model, plans the arena, and allocates
// activation storage.
func NewInterpreter(m *Model) (*Interpreter, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	plan, err := PlanArena(m)
	if err != nil {
		return nil, err
	}
	if err := plan.Check(m); err != nil {
		return nil, err
	}
	for ti := range plan.Offsets {
		m.Tensors[ti].Alloc()
	}
	return &Interpreter{model: m, plan: plan}, nil
}

// SetMeter routes per-op cycle costs to m (typically the enclave's core).
func (ip *Interpreter) SetMeter(m Meter) { ip.meter = m }

// Model returns the interpreted model.
func (ip *Interpreter) Model() *Model { return ip.model }

// ArenaSize returns the planned activation arena in bytes (peak RAM).
func (ip *Interpreter) ArenaSize() int { return ip.plan.Total }

// Input returns the i-th model input tensor.
func (ip *Interpreter) Input(i int) *Tensor { return ip.model.Tensors[ip.model.Inputs[i]] }

// Output returns the i-th model output tensor.
func (ip *Interpreter) Output(i int) *Tensor { return ip.model.Tensors[ip.model.Outputs[i]] }

// Invoke runs the graph once over the current input contents.
func (ip *Interpreter) Invoke() error {
	m := ip.model
	for ni, n := range m.Nodes {
		if err := ip.evalNode(n); err != nil {
			return fmt.Errorf("tflm: node %d (%v): %w", ni, n.Op, err)
		}
		if ip.meter != nil {
			ip.meter.Charge(NodeCycles(m, n))
		}
	}
	return nil
}

func (ip *Interpreter) evalNode(n Node) error {
	m := ip.model
	switch n.Op {
	case OpConv2D:
		return evalConv2D(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(Conv2DParams))
	case OpDepthwiseConv2D:
		return evalDepthwiseConv2D(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(Conv2DParams))
	case OpFullyConnected:
		return evalFullyConnected(m.Tensor(n.Inputs[0]), m.Tensor(n.Inputs[1]), m.Tensor(n.Inputs[2]), m.Tensor(n.Outputs[0]), n.Params.(FullyConnectedParams))
	case OpSoftmax:
		p, _ := n.Params.(SoftmaxParams)
		return evalSoftmax(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]), p)
	case OpReshape:
		return evalReshape(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]))
	case OpRelu:
		return evalRelu(m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]))
	case OpMaxPool2D, OpAvgPool2D:
		return evalPool(n.Op, m.Tensor(n.Inputs[0]), m.Tensor(n.Outputs[0]), n.Params.(PoolParams))
	default:
		return fmt.Errorf("unsupported op %v", n.Op)
	}
}

// NodeCycles estimates the simulated-core cost of one operator application
// using the calibrated hw cost model.
func NodeCycles(m *Model, n Node) uint64 {
	switch n.Op {
	case OpConv2D, OpDepthwiseConv2D, OpFullyConnected:
		out := m.Tensor(n.Outputs[0])
		return nodeMACs(m, n)*hw.CyclesPerMAC + uint64(out.NumElements())*hw.CyclesPerActivation
	case OpSoftmax:
		return uint64(m.Tensor(n.Outputs[0]).NumElements()) * hw.CyclesPerSoftmaxTerm
	case OpRelu:
		return uint64(m.Tensor(n.Outputs[0]).NumElements()) * hw.CyclesPerActivation
	case OpReshape:
		return uint64(m.Tensor(n.Outputs[0]).ByteSize()) * hw.CyclesPerByteCopy
	case OpMaxPool2D, OpAvgPool2D:
		p := n.Params.(PoolParams)
		out := m.Tensor(n.Outputs[0])
		return uint64(out.NumElements()) * uint64(p.FilterH*p.FilterW) * hw.CyclesPerActivation
	default:
		return 0
	}
}

// InferenceCycles estimates the total cost of one Invoke.
func InferenceCycles(m *Model) uint64 {
	var total uint64
	for _, n := range m.Nodes {
		total += NodeCycles(m, n)
	}
	return total
}

// Argmax returns the index of the maximum element of a rank-1-like tensor,
// the classification decision rule of the keyword spotter.
func Argmax(t *Tensor) int {
	best := 0
	switch t.Type {
	case Int8:
		for i, v := range t.I8 {
			if v > t.I8[best] {
				best = i
			}
		}
	case UInt8:
		for i, v := range t.U8 {
			if v > t.U8[best] {
				best = i
			}
		}
	case Float32:
		for i, v := range t.F32 {
			if v > t.F32[best] {
				best = i
			}
		}
	case Int32:
		for i, v := range t.I32 {
			if v > t.I32[best] {
				best = i
			}
		}
	}
	return best
}
