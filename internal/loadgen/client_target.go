package loadgen

import (
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/netfront/client"
)

// ClientTargetConfig parameterizes a ClientTarget: where to connect, as
// whom, and what each traffic class sends.
type ClientTargetConfig struct {
	// Network and Addr name the server as in net.Dial ("tcp",
	// "127.0.0.1:7071" or "unix", "/tmp/omg.sock").
	Network string
	// Addr is the dial address for Network.
	Addr string
	// Tenants lists the tenant identities to pre-dial connections for —
	// usually the names from Config.Tenants. Empty means one anonymous
	// connection pool (no hello handshake unless Model is set).
	Tenants []string
	// Model is the model id every connection binds to via the hello
	// handshake; empty uses the server's default model.
	Model string
	// Conns is the number of connections per tenant; requests round-robin
	// across them by arrival sequence. <= 0 means 1.
	Conns int
	// Utterance is the audio every one-shot and batch request submits,
	// and the source streams are chunked from. Required.
	Utterance []int16
	// BatchSize is how many utterances a ClassBatch request carries;
	// <= 0 means 4.
	BatchSize int
	// StreamChunks is how many sends a ClassStream request splits the
	// utterance into; <= 0 means 4.
	StreamChunks int
	// Timeout bounds each one-shot request end to end (queueing,
	// inference, retries, redial); 0 means unbounded.
	Timeout time.Duration
	// Retry is the one-shot retry policy applied on every connection.
	Retry client.RetryPolicy
	// Hedge opts one-shot requests into hedged duplicates on every
	// connection; zero value disables hedging.
	Hedge client.HedgePolicy
	// Seed feeds each connection's deterministic jitter source (offset
	// per connection so backoffs desynchronize); 0 means 1.
	Seed int64
	// DialFunc replaces the transport dial on every connection — the
	// test and fault-injection hook. nil means the stock dialer.
	DialFunc func(network, addr string) (net.Conn, error)
}

// ClientTarget is the Target that drives a live netfront server through
// netfront/client: per-tenant connection pools, one-shot/stream/batch
// request shapes, optional retry and hedging. It implements StatsSource by
// summing the counters of every connection.
type ClientTarget struct {
	cfg     ClientTargetConfig
	pools   map[string][]*client.Client
	batch   [][]int16
	chunks  [][]int16
	closeMu sync.Mutex
	closed  bool
}

// NewClientTarget dials Conns connections per tenant and returns the ready
// target. Any dial failure closes what was already dialed and fails.
func NewClientTarget(cfg ClientTargetConfig) (*ClientTarget, error) {
	if len(cfg.Utterance) == 0 {
		return nil, fmt.Errorf("loadgen: ClientTargetConfig.Utterance is required")
	}
	if cfg.Conns <= 0 {
		cfg.Conns = 1
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 4
	}
	if cfg.StreamChunks <= 0 {
		cfg.StreamChunks = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		tenants = []string{""}
	}
	t := &ClientTarget{cfg: cfg, pools: make(map[string][]*client.Client, len(tenants))}
	t.batch = make([][]int16, cfg.BatchSize)
	for i := range t.batch {
		t.batch[i] = cfg.Utterance
	}
	t.chunks = splitChunks(cfg.Utterance, cfg.StreamChunks)
	seed := cfg.Seed
	for _, tenant := range tenants {
		pool := make([]*client.Client, cfg.Conns)
		for i := range pool {
			c, err := client.DialOptions(cfg.Network, cfg.Addr, client.Options{
				Retry:    cfg.Retry,
				Hedge:    cfg.Hedge,
				Redial:   true,
				Seed:     seed,
				Tenant:   tenant,
				Model:    cfg.Model,
				DialFunc: cfg.DialFunc,
			})
			if err != nil {
				t.Close()
				return nil, fmt.Errorf("loadgen: dial tenant %q conn %d: %w", tenant, i, err)
			}
			pool[i] = c
			seed++
		}
		t.pools[tenant] = pool
	}
	return t, nil
}

// Close tears down every connection. Idempotent; in-flight requests fail
// with ErrClosed.
func (t *ClientTarget) Close() error {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	for _, pool := range t.pools {
		for _, c := range pool {
			if c != nil {
				c.Close()
			}
		}
	}
	return nil
}

// Stats sums the resilience counters across every connection in every
// tenant pool.
func (t *ClientTarget) Stats() client.Stats {
	var s client.Stats
	for _, pool := range t.pools {
		for _, c := range pool {
			cs := c.Stats()
			s.Retries += cs.Retries
			s.Redials += cs.Redials
			s.Hedges += cs.Hedges
			s.Busy += cs.Busy
		}
	}
	return s
}

// conn picks the tenant's seq'th connection round-robin.
func (t *ClientTarget) conn(tenant string, seq int) (*client.Client, error) {
	pool := t.pools[tenant]
	if len(pool) == 0 {
		return nil, fmt.Errorf("loadgen: no connections for tenant %q", tenant)
	}
	return pool[seq%len(pool)], nil
}

// Do executes one request of the class on the tenant's connection pool.
func (t *ClientTarget) Do(class Class, tenant string, seq int) error {
	c, err := t.conn(tenant, seq)
	if err != nil {
		return err
	}
	switch class {
	case ClassOneShot:
		var deadline time.Time
		if t.cfg.Timeout > 0 {
			deadline = time.Now().Add(t.cfg.Timeout)
		}
		_, err := c.ClassifyDeadline(t.cfg.Utterance, deadline)
		return err
	case ClassBatch:
		_, err := c.ClassifyBatch(t.batch)
		return err
	case ClassStream:
		var mu sync.Mutex
		var cbErr error
		s, err := c.OpenStream(func(hop uint64, label int, err error) {
			if err != nil {
				mu.Lock()
				if cbErr == nil {
					cbErr = err
				}
				mu.Unlock()
			}
		})
		if err != nil {
			return err
		}
		for _, chunk := range t.chunks {
			if err := s.Send(chunk); err != nil {
				s.Close()
				return err
			}
		}
		if _, err := s.Close(); err != nil {
			return err
		}
		mu.Lock()
		defer mu.Unlock()
		return cbErr
	default:
		return fmt.Errorf("loadgen: unknown class %v", class)
	}
}

// splitChunks cuts samples into n nearly-equal contiguous chunks (the last
// carries the remainder); n never exceeds len(samples).
func splitChunks(samples []int16, n int) [][]int16 {
	if n > len(samples) {
		n = len(samples)
	}
	if n < 1 {
		n = 1
	}
	chunks := make([][]int16, 0, n)
	step := len(samples) / n
	for i := 0; i < n; i++ {
		lo := i * step
		hi := lo + step
		if i == n-1 {
			hi = len(samples)
		}
		chunks = append(chunks, samples[lo:hi])
	}
	return chunks
}
