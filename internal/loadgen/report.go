package loadgen

import (
	"encoding/json"
	"io"
	"runtime"
	"time"
)

// BenchEntry mirrors cmd/benchjson's Benchmark record: one named
// measurement with iterations, ns/op and unit-keyed custom metrics. Emitted
// here so loadgen runs land in the same BENCH_<rev>.json trajectory the
// benchmarks use (`benchjson -cmp old.json new.json` works across both).
type BenchEntry struct {
	// Name is the benchmark-style identifier ("Loadgen/oneshot", ...).
	Name string `json:"name"`
	// Iters is the completed-request count backing the entry.
	Iters int64 `json:"iters"`
	// NsPerOp is the mean latency in nanoseconds.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics maps metric unit to value, benchjson conventions: units
	// ending in "/op" are regression-gated costs, units containing "/s"
	// are rates, anything else is informational.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// BenchFile mirrors cmd/benchjson's File: context plus entries.
type BenchFile struct {
	// Context carries run provenance (goos/goarch/source/config echo).
	Context map[string]string `json:"context,omitempty"`
	// Benchmarks holds one entry per traffic class plus the overall line.
	Benchmarks []BenchEntry `json:"benchmarks"`
}

// ms converts a duration to float milliseconds for metric emission.
func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// entry builds one BenchEntry from a histogram. The p99 is keyed
// "p99-ms/op" — a benchjson *cost* unit, so trajectory comparisons gate on
// it — while the other quantiles use informational "-ms" keys.
func entry(name string, h *Histogram) BenchEntry {
	return BenchEntry{
		Name:    name,
		Iters:   int64(h.Count()),
		NsPerOp: float64(h.Mean()),
		Metrics: map[string]float64{
			"p50-ms":    ms(h.Quantile(0.50)),
			"p90-ms":    ms(h.Quantile(0.90)),
			"p99-ms/op": ms(h.Quantile(0.99)),
			"p99.9-ms":  ms(h.Quantile(0.999)),
			"max-ms":    ms(h.Max()),
		},
	}
}

// BenchFile renders the report in cmd/benchjson's snapshot schema: an
// overall entry named name, one entry per traffic class that saw
// completions (name/class), and run-level rates on the overall entry.
func (r *Report) BenchFile(name string) BenchFile {
	overall := entry(name, r.Overall)
	secs := r.Elapsed.Seconds()
	if secs > 0 {
		overall.Metrics["offered/s"] = float64(r.Offered) / secs
		overall.Metrics["done/s"] = float64(r.Completed) / secs
	}
	if r.Offered > 0 {
		overall.Metrics["busy-rate"] = float64(r.Busy) / float64(r.Offered)
		overall.Metrics["shed-rate"] = float64(r.Shed) / float64(r.Offered)
		overall.Metrics["err-rate"] = float64(r.Errors) / float64(r.Offered)
	}
	overall.Metrics["fairness"] = r.Fairness()
	overall.Metrics["retries"] = float64(r.Client.Retries)
	overall.Metrics["hedges"] = float64(r.Client.Hedges)
	entries := []BenchEntry{overall}
	for c := ClassOneShot; c < numClasses; c++ {
		if h := r.PerClass[c]; h.Count() > 0 {
			entries = append(entries, entry(name+"/"+c.String(), h))
		}
	}
	return BenchFile{
		Context: map[string]string{
			"goos":   runtime.GOOS,
			"goarch": runtime.GOARCH,
			"source": "omg-loadgen",
		},
		Benchmarks: entries,
	}
}

// WriteJSON writes the report as indented benchjson-schema JSON.
func (r *Report) WriteJSON(w io.Writer, name string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.BenchFile(name))
}
