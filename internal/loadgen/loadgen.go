package loadgen

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/netfront"
	"repro/internal/netfront/client"
)

// Class is a traffic class in a mixed profile: the three request shapes the
// wire protocol serves.
type Class int

// The traffic classes. ClassOneShot is a single utterance per request,
// ClassStream opens a stream and feeds it hop-sized chunks, ClassBatch
// submits several utterances in one frame.
const (
	ClassOneShot Class = iota
	ClassStream
	ClassBatch
	numClasses
)

// String names the class as it appears in reports ("oneshot", "stream",
// "batch").
func (c Class) String() string {
	switch c {
	case ClassOneShot:
		return "oneshot"
	case ClassStream:
		return "stream"
	case ClassBatch:
		return "batch"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Mix is the relative weight of each traffic class in the arrival stream.
// Weights are relative, not percentages; the zero value means pure one-shot
// traffic.
type Mix struct {
	// OneShot weights single-utterance requests.
	OneShot float64
	// Stream weights open-stream/chunks/close request sequences.
	Stream float64
	// Batch weights multi-utterance batch frames.
	Batch float64
}

// normalized returns the mix as cumulative probabilities over the class
// order, defaulting to pure one-shot when every weight is zero.
func (m Mix) normalized() [numClasses]float64 {
	w := [numClasses]float64{m.OneShot, m.Stream, m.Batch}
	var total float64
	for _, x := range w {
		if x > 0 {
			total += x
		}
	}
	if total == 0 {
		return [numClasses]float64{1, 1, 1}
	}
	var cum [numClasses]float64
	var acc float64
	for i, x := range w {
		if x > 0 {
			acc += x / total
		}
		cum[i] = acc
	}
	cum[numClasses-1] = 1
	return cum
}

// TenantSpec is one tenant in a multi-tenant profile: arrivals are assigned
// to tenants with probability proportional to Weight.
type TenantSpec struct {
	// Name is the tenant identity sent on the wire (hello handshake).
	Name string
	// Weight is the tenant's relative share of the arrival stream; <= 0
	// means 1.
	Weight float64
}

// Config parameterizes one open-loop run. Rate and either Duration or
// MaxArrivals bound the schedule; everything else shapes the traffic.
type Config struct {
	// Rate is the mean arrival rate in requests per second (Poisson
	// process: exponential inter-arrival times). Must be > 0.
	Rate float64
	// Duration is the schedule horizon: arrivals whose scheduled time
	// falls past it are not issued. Zero with MaxArrivals set means
	// arrival-count-bounded only.
	Duration time.Duration
	// MaxArrivals caps the number of arrivals regardless of Duration;
	// zero means unlimited. At least one of Duration/MaxArrivals must
	// bound the run.
	MaxArrivals int
	// Seed drives the arrival schedule and the class/tenant assignment.
	// The whole schedule is a deterministic function of (Seed, Rate,
	// Duration, MaxArrivals, Mix, Tenants) — completions never feed back
	// into it. Zero means 1.
	Seed int64
	// Mix is the traffic-class mix; zero value = all one-shot.
	Mix Mix
	// Tenants is the multi-tenant profile; empty means one anonymous
	// tenant ("").
	Tenants []TenantSpec
	// DrainTimeout bounds how long Run waits for in-flight requests after
	// the schedule ends; what is still unfinished then is reported as
	// Inflight. Zero means 10s.
	DrainTimeout time.Duration
}

// withDefaults fills unset knobs and validates the schedule bounds.
func (c Config) withDefaults() (Config, error) {
	if c.Rate <= 0 {
		return c, errors.New("loadgen: Config.Rate must be > 0")
	}
	if c.Duration <= 0 && c.MaxArrivals <= 0 {
		return c, errors.New("loadgen: set Config.Duration and/or Config.MaxArrivals")
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = 10 * time.Second
	}
	return c, nil
}

// Target executes one request of a traffic class on behalf of a tenant.
// Implementations must be safe for concurrent calls — the open-loop
// scheduler dispatches every arrival in its own goroutine and never waits.
// ClientTarget is the wire-protocol implementation; tests use stubs.
type Target interface {
	// Do runs one request to completion and returns its outcome. seq is
	// the arrival's schedule index (useful for round-robin decisions).
	Do(class Class, tenant string, seq int) error
}

// StatsSource is the optional Target extension that surfaces client-side
// resilience counters (retries, redials, hedges, BUSY replies) into the
// report.
type StatsSource interface {
	// Stats snapshots the accumulated client counters.
	Stats() client.Stats
}

// Report is the outcome of one Run: counts, per-class latency
// distributions, overload-hint observations and per-tenant completions.
type Report struct {
	// Offered is how many arrivals the schedule issued — a deterministic
	// function of the Config, independent of server behavior.
	Offered uint64
	// Completed counts requests that finished successfully.
	Completed uint64
	// Busy counts requests rejected with BUSY (admission backpressure).
	Busy uint64
	// Shed counts requests shed by the queue-deadline overload path
	// (wire CodeDeadlineExceeded).
	Shed uint64
	// Errors counts every other failure — protocol errors, transport
	// loss, client-side deadline misses.
	Errors uint64
	// Inflight is what the drain timeout gave up on: issued but neither
	// completed nor failed when Run returned.
	Inflight uint64
	// Elapsed is wall-clock time from first schedule tick to return.
	Elapsed time.Duration
	// Overall is the latency distribution across all classes, measured
	// from each arrival's *scheduled* time (coordinated-omission
	// corrected: scheduler lag counts against the server, not for it).
	Overall *Histogram
	// PerClass holds one latency histogram per traffic class.
	PerClass [numClasses]*Histogram
	// Hints is the distribution of server retry-after hints observed on
	// BUSY and shed replies.
	Hints *Histogram
	// TenantDone maps tenant name to its completed-request count.
	TenantDone map[string]uint64
	// ErrorSamples holds the first few distinct failure messages, for
	// diagnosis without logging every error.
	ErrorSamples []string
	// Client is the target's resilience-counter snapshot when the target
	// implements StatsSource; zero otherwise.
	Client client.Stats
}

// Latency returns the per-class histogram (nil Class bounds are the
// caller's problem only in the sense that out-of-range panics).
func (r *Report) Latency(c Class) *Histogram { return r.PerClass[c] }

// Fairness is the Jain fairness index over per-tenant completions:
// (Σx)²/(n·Σx²), 1.0 when every tenant completed the same amount, 1/n when
// one tenant got everything. Returns 1 with fewer than two tenants.
func (r *Report) Fairness() float64 {
	if len(r.TenantDone) < 2 {
		return 1
	}
	counts := make([]uint64, 0, len(r.TenantDone))
	for _, n := range r.TenantDone {
		counts = append(counts, n)
	}
	return JainIndex(counts)
}

// JainIndex computes Jain's fairness index over a set of allocation counts.
func JainIndex(counts []uint64) float64 {
	if len(counts) == 0 {
		return 1
	}
	var sum, sq float64
	for _, c := range counts {
		x := float64(c)
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(counts)) * sq)
}

// String is the one-line human summary of the run.
func (r *Report) String() string {
	return fmt.Sprintf("offered=%d completed=%d busy=%d shed=%d errors=%d inflight=%d elapsed=%v fairness=%.3f latency{%s}",
		r.Offered, r.Completed, r.Busy, r.Shed, r.Errors, r.Inflight,
		r.Elapsed.Round(time.Millisecond), r.Fairness(), r.Overall.String())
}

// collector is the concurrent half of a Report: completion goroutines
// record here, Run snapshots it into the Report at the end.
type collector struct {
	completed atomic.Uint64
	busy      atomic.Uint64
	shed      atomic.Uint64
	errs      atomic.Uint64

	overall  *Histogram
	perClass [numClasses]*Histogram
	hints    *Histogram

	mu      sync.Mutex
	tenants map[string]uint64
	samples []string
	seen    map[string]bool
}

func newCollector() *collector {
	c := &collector{
		overall: NewHistogram(),
		hints:   NewHistogram(),
		tenants: make(map[string]uint64),
		seen:    make(map[string]bool),
	}
	for i := range c.perClass {
		c.perClass[i] = NewHistogram()
	}
	return c
}

// record files one completed request: latency on success, classified
// counters plus any retry-after hint on failure.
func (c *collector) record(class Class, tenant string, lat time.Duration, err error) {
	if err == nil {
		c.completed.Add(1)
		c.overall.Record(lat)
		c.perClass[class].Record(lat)
		c.mu.Lock()
		c.tenants[tenant]++
		c.mu.Unlock()
		return
	}
	var hint time.Duration
	var be *client.BusyError
	var re *client.RemoteError
	switch {
	case errors.As(err, &be):
		c.busy.Add(1)
		hint = be.RetryAfter
	case errors.As(err, &re) && re.Code == netfront.CodeBusy:
		c.busy.Add(1)
		hint = re.RetryAfter
	case errors.As(err, &re) && re.Code == netfront.CodeDeadlineExceeded:
		c.shed.Add(1)
		hint = re.RetryAfter
	case errors.As(err, &re) && re.Code == netfront.CodeUnavailable && re.RetryAfter > 0:
		// The overload controller's over-share shed: transient by
		// contract (it carries a drain hint), so it is load shedding,
		// not a protocol failure.
		c.shed.Add(1)
		hint = re.RetryAfter
	default:
		c.errs.Add(1)
		c.mu.Lock()
		if msg := err.Error(); !c.seen[msg] && len(c.samples) < 8 {
			c.seen[msg] = true
			c.samples = append(c.samples, msg)
		}
		c.mu.Unlock()
	}
	if hint > 0 {
		c.hints.Record(hint)
	}
}

// Run executes one open-loop load generation pass: it draws the Poisson
// arrival schedule from the seeded source, dispatches every arrival at its
// scheduled time in its own goroutine, and never lets completions (or the
// lack of them) slow the schedule down — a stalled server faces the full
// offered load, which is the property that makes the measured tails honest.
// Run returns after the schedule ends and in-flight requests drain (bounded
// by DrainTimeout; stragglers are counted, not waited for).
func Run(cfg Config, t Target) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	mix := cfg.Mix.normalized()
	tenants, tcum := tenantTable(cfg.Tenants)
	col := newCollector()

	var wg sync.WaitGroup
	var offered uint64
	start := time.Now()
	next := start
	for seq := 0; ; seq++ {
		if cfg.MaxArrivals > 0 && seq >= cfg.MaxArrivals {
			break
		}
		// Everything random about this arrival — its time, class and
		// tenant — is drawn here, on the schedule goroutine, before
		// dispatch: the schedule is sealed against completion feedback.
		next = next.Add(time.Duration(rng.ExpFloat64() / cfg.Rate * float64(time.Second)))
		if cfg.Duration > 0 && next.Sub(start) > cfg.Duration {
			break
		}
		class := Class(pick(rng, mix[:]))
		tenant := tenants[pick(rng, tcum)]
		if d := time.Until(next); d > 0 {
			time.Sleep(d)
		}
		offered++
		wg.Add(1)
		go func(sched time.Time, class Class, tenant string, seq int) {
			defer wg.Done()
			err := t.Do(class, tenant, seq)
			col.record(class, tenant, time.Since(sched), err)
		}(next, class, tenant, seq)
	}

	drained := make(chan struct{})
	go func() {
		wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-time.After(cfg.DrainTimeout):
	}

	rep := &Report{
		Offered:      offered,
		Completed:    col.completed.Load(),
		Busy:         col.busy.Load(),
		Shed:         col.shed.Load(),
		Errors:       col.errs.Load(),
		Elapsed:      time.Since(start),
		Overall:      col.overall,
		PerClass:     col.perClass,
		Hints:        col.hints,
		TenantDone:   make(map[string]uint64, len(col.tenants)),
		ErrorSamples: col.samples,
	}
	rep.Inflight = offered - rep.Completed - rep.Busy - rep.Shed - rep.Errors
	col.mu.Lock()
	for k, v := range col.tenants {
		rep.TenantDone[k] = v
	}
	col.mu.Unlock()
	if ss, ok := t.(StatsSource); ok {
		rep.Client = ss.Stats()
	}
	return rep, nil
}

// tenantTable flattens the tenant specs into a name list plus cumulative
// weights for sampling; an empty spec list is the single anonymous tenant.
func tenantTable(specs []TenantSpec) ([]string, []float64) {
	if len(specs) == 0 {
		return []string{""}, []float64{1}
	}
	names := make([]string, len(specs))
	cum := make([]float64, len(specs))
	var total float64
	for i, s := range specs {
		w := s.Weight
		if w <= 0 {
			w = 1
		}
		names[i] = s.Name
		cum[i] = w
		total += w
	}
	var acc float64
	for i := range cum {
		acc += cum[i] / total
		cum[i] = acc
	}
	cum[len(cum)-1] = 1
	return names, cum
}

// pick draws an index from cumulative probabilities via one uniform sample.
// A zero-mass entry is never selected: a draw landing exactly on a shared
// boundary advances to the next entry with probability mass.
func pick(rng *rand.Rand, cum []float64) int {
	u := rng.Float64()
	i := sort.SearchFloat64s(cum, u)
	for i < len(cum)-1 {
		lo := 0.0
		if i > 0 {
			lo = cum[i-1]
		}
		if cum[i] > lo {
			break
		}
		i++
	}
	return i
}
