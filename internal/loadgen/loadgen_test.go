package loadgen

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netfront"
	"repro/internal/netfront/client"
)

// stubTarget runs fn per request; the zero fn completes instantly.
type stubTarget struct {
	fn    func(class Class, tenant string, seq int) error
	stats client.Stats
}

func (s *stubTarget) Do(class Class, tenant string, seq int) error {
	if s.fn == nil {
		return nil
	}
	return s.fn(class, tenant, seq)
}

func (s *stubTarget) Stats() client.Stats { return s.stats }

// TestOpenLoopOfferedLoadIndependentOfStall is the acceptance-criteria
// property: the arrival schedule is a function of the config alone, so a
// deliberately stalled server receives exactly the offered load a healthy
// one does — the generator never self-throttles (no closed-loop mercy).
func TestOpenLoopOfferedLoadIndependentOfStall(t *testing.T) {
	cfg := Config{
		Rate:         2000,
		Duration:     300 * time.Millisecond,
		Seed:         7,
		DrainTimeout: 50 * time.Millisecond,
	}

	healthy, err := Run(cfg, &stubTarget{})
	if err != nil {
		t.Fatal(err)
	}
	if healthy.Offered == 0 || healthy.Completed != healthy.Offered {
		t.Fatalf("healthy run: %v", healthy)
	}

	block := make(chan struct{})
	defer close(block) // release the stalled goroutines after the test
	stalled, err := Run(cfg, &stubTarget{fn: func(Class, string, int) error {
		<-block
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}

	if stalled.Offered != healthy.Offered {
		t.Fatalf("stalled server reduced offered load: %d vs healthy %d — the loop is closed, not open",
			stalled.Offered, healthy.Offered)
	}
	if stalled.Completed != 0 || stalled.Inflight != stalled.Offered {
		t.Fatalf("stalled run bookkeeping: %v", stalled)
	}
}

// TestScheduleDeterminism: same config, same seed → identical arrival
// count and identical per-tenant assignment (observed via completions
// against an instant target).
func TestScheduleDeterminism(t *testing.T) {
	cfg := Config{
		Rate:        5000,
		MaxArrivals: 1500,
		Seed:        11,
		Mix:         Mix{OneShot: 3, Stream: 1, Batch: 1},
		Tenants:     []TenantSpec{{Name: "a", Weight: 4}, {Name: "b", Weight: 1}},
	}
	r1, err := Run(cfg, &stubTarget{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(cfg, &stubTarget{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Offered != uint64(cfg.MaxArrivals) || r2.Offered != r1.Offered {
		t.Fatalf("offered %d / %d, want %d", r1.Offered, r2.Offered, cfg.MaxArrivals)
	}
	for _, tn := range []string{"a", "b"} {
		if r1.TenantDone[tn] != r2.TenantDone[tn] {
			t.Fatalf("tenant %q assignment not deterministic: %d vs %d", tn, r1.TenantDone[tn], r2.TenantDone[tn])
		}
	}
	// The 4:1 weights must show up in the arrival split (same seed, so
	// this is a fixed property of the schedule, not a statistical one).
	if r1.TenantDone["a"] <= 2*r1.TenantDone["b"] {
		t.Fatalf("tenant weighting not applied: %v", r1.TenantDone)
	}
}

// TestMixAssignsClasses: zero mix is pure one-shot; a weighted mix routes
// arrivals to every weighted class and to no unweighted one.
func TestMixAssignsClasses(t *testing.T) {
	var classes [numClasses]atomic.Uint64
	count := func(c Class, _ string, _ int) error {
		classes[c].Add(1)
		return nil
	}

	if _, err := Run(Config{Rate: 10000, MaxArrivals: 300, Seed: 3}, &stubTarget{fn: count}); err != nil {
		t.Fatal(err)
	}
	if classes[ClassStream].Load() != 0 || classes[ClassBatch].Load() != 0 || classes[ClassOneShot].Load() != 300 {
		t.Fatalf("zero mix not pure one-shot: %v %v %v",
			classes[ClassOneShot].Load(), classes[ClassStream].Load(), classes[ClassBatch].Load())
	}

	for i := range classes {
		classes[i].Store(0)
	}
	cfg := Config{Rate: 10000, MaxArrivals: 600, Seed: 3, Mix: Mix{Stream: 1, Batch: 1}}
	if _, err := Run(cfg, &stubTarget{fn: count}); err != nil {
		t.Fatal(err)
	}
	if classes[ClassOneShot].Load() != 0 {
		t.Fatalf("unweighted class received arrivals: %d", classes[ClassOneShot].Load())
	}
	if classes[ClassStream].Load() == 0 || classes[ClassBatch].Load() == 0 {
		t.Fatalf("weighted classes starved: stream=%d batch=%d",
			classes[ClassStream].Load(), classes[ClassBatch].Load())
	}
}

// TestOutcomeClassification: BUSY, overload-shed and generic failures land
// in the right counters, and server hints land in the hint histogram.
func TestOutcomeClassification(t *testing.T) {
	cases := []struct {
		name  string
		err   error
		check func(t *testing.T, r *Report)
	}{
		{"busy", &client.BusyError{RetryAfter: 5 * time.Millisecond}, func(t *testing.T, r *Report) {
			if r.Busy != r.Offered || r.Errors != 0 {
				t.Fatalf("busy run: %v", r)
			}
			if r.Hints.Count() != r.Offered || r.Hints.Min() != 5*time.Millisecond {
				t.Fatalf("hints not recorded: %v", r.Hints)
			}
		}},
		{"shed", &client.RemoteError{Code: netfront.CodeDeadlineExceeded, RetryAfter: 2 * time.Millisecond}, func(t *testing.T, r *Report) {
			if r.Shed != r.Offered || r.Busy != 0 || r.Errors != 0 {
				t.Fatalf("shed run: %v", r)
			}
			if r.Hints.Min() != 2*time.Millisecond {
				t.Fatalf("shed hint not recorded: %v", r.Hints)
			}
		}},
		{"protocol", errors.New("boom"), func(t *testing.T, r *Report) {
			if r.Errors != r.Offered || r.Busy != 0 || r.Shed != 0 {
				t.Fatalf("error run: %v", r)
			}
			if len(r.ErrorSamples) != 1 || r.ErrorSamples[0] != "boom" {
				t.Fatalf("error samples: %v", r.ErrorSamples)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.err
			r, rerr := Run(Config{Rate: 10000, MaxArrivals: 50, Seed: 5},
				&stubTarget{fn: func(Class, string, int) error { return err }})
			if rerr != nil {
				t.Fatal(rerr)
			}
			if r.Completed != 0 || r.Inflight != 0 {
				t.Fatalf("failure run has completions: %v", r)
			}
			tc.check(t, r)
		})
	}
}

// TestStatsPassthrough: a StatsSource target's counters reach the report.
func TestStatsPassthrough(t *testing.T) {
	st := &stubTarget{stats: client.Stats{Retries: 7, Hedges: 3}}
	r, err := Run(Config{Rate: 10000, MaxArrivals: 10}, st)
	if err != nil {
		t.Fatal(err)
	}
	if r.Client.Retries != 7 || r.Client.Hedges != 3 {
		t.Fatalf("client stats not passed through: %+v", r.Client)
	}
}

// TestJainIndex pins the fairness formula at its extremes.
func TestJainIndex(t *testing.T) {
	if got := JainIndex([]uint64{5, 5, 5, 5}); got != 1 {
		t.Fatalf("equal shares: %f", got)
	}
	if got := JainIndex([]uint64{10, 0, 0, 0}); got != 0.25 {
		t.Fatalf("single hog: %f", got)
	}
	if got := JainIndex(nil); got != 1 {
		t.Fatalf("empty: %f", got)
	}
}

// TestConfigValidation rejects unusable configurations.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{Duration: time.Second}, &stubTarget{}); err == nil {
		t.Fatal("zero rate accepted")
	}
	if _, err := Run(Config{Rate: 100}, &stubTarget{}); err == nil {
		t.Fatal("unbounded schedule accepted")
	}
}

// TestReportJSONShape: the benchjson-schema emission carries the gated
// p99-ms/op key on every entry and the run-level rates on the overall one.
func TestReportJSONShape(t *testing.T) {
	r, err := Run(Config{Rate: 10000, MaxArrivals: 100, Seed: 9, Mix: Mix{OneShot: 1, Batch: 1}}, &stubTarget{})
	if err != nil {
		t.Fatal(err)
	}
	f := r.BenchFile("X")
	if len(f.Benchmarks) != 3 {
		t.Fatalf("entries: %+v", f.Benchmarks)
	}
	if f.Benchmarks[0].Name != "X" {
		t.Fatalf("overall entry name %q", f.Benchmarks[0].Name)
	}
	for _, b := range f.Benchmarks {
		if _, ok := b.Metrics["p99-ms/op"]; !ok {
			t.Fatalf("entry %q lacks gated p99-ms/op", b.Name)
		}
	}
	for _, key := range []string{"offered/s", "done/s", "fairness"} {
		if _, ok := f.Benchmarks[0].Metrics[key]; !ok {
			t.Fatalf("overall entry lacks %q", key)
		}
	}
}
