package loadgen

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBucketBoundaryExactness proves bucketLow is the exact inverse of
// bucketIndex on every bucket boundary, and that boundaries partition the
// value space: the value one below a boundary lands in the previous bucket.
func TestBucketBoundaryExactness(t *testing.T) {
	for i := 0; i < hBuckets; i++ {
		low := bucketLow(i)
		if got := bucketIndex(low); got != i {
			t.Fatalf("bucketIndex(bucketLow(%d)=%d) = %d", i, low, got)
		}
		if low > 0 {
			if got := bucketIndex(low - 1); got != i-1 {
				t.Fatalf("bucketIndex(%d) = %d, want %d (below boundary of bucket %d)", low-1, got, i-1, i)
			}
		}
	}
}

// TestBucketSmallValuesExact proves values below 2·hSub each own a bucket:
// the histogram is exact, not approximate, for 0..63 ns.
func TestBucketSmallValuesExact(t *testing.T) {
	for v := int64(0); v < 2*hSub; v++ {
		if got := bucketIndex(v); got != int(v) {
			t.Fatalf("bucketIndex(%d) = %d", v, got)
		}
		if got := bucketLow(int(v)); got != v {
			t.Fatalf("bucketLow(%d) = %d", v, got)
		}
	}
}

// TestBucketRelativeError proves the log-linear geometry's resolution
// bound: every bucket's width is at most its lower boundary / hSub, so a
// quantile read is within ~3% of the true value.
func TestBucketRelativeError(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200000; trial++ {
		v := rng.Int63() >> uint(rng.Intn(62))
		i := bucketIndex(v)
		low := bucketLow(i)
		if low > v {
			t.Fatalf("bucketLow(bucketIndex(%d)) = %d > value", v, low)
		}
		if i+1 < hBuckets {
			width := bucketLow(i+1) - low
			if low >= 2*hSub && width > low/hSub {
				t.Fatalf("bucket %d width %d exceeds low/%d (low=%d)", i, width, hSub, low)
			}
			if bucketLow(i+1) <= v {
				t.Fatalf("value %d beyond its bucket %d [%d, %d)", v, i, low, bucketLow(i+1))
			}
		}
	}
}

// TestQuantileMonotonicity proves Quantile is non-decreasing in q over a
// randomly filled histogram, and pinned by Min/Max at the extremes.
func TestQuantileMonotonicity(t *testing.T) {
	h := NewHistogram()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		h.Record(time.Duration(rng.Int63n(int64(10 * time.Second))))
	}
	prev := time.Duration(-1)
	for q := 0.0; q <= 1.0; q += 0.001 {
		cur := h.Quantile(q)
		if cur < prev {
			t.Fatalf("Quantile(%f) = %v < previous %v", q, cur, prev)
		}
		prev = cur
	}
	if h.Quantile(0) > h.Min() {
		t.Fatalf("Quantile(0) = %v > Min %v", h.Quantile(0), h.Min())
	}
	if h.Quantile(1) > h.Max() || h.Max() < h.Quantile(0.999) {
		t.Fatalf("extremes out of order: q1=%v q.999=%v max=%v", h.Quantile(1), h.Quantile(0.999), h.Max())
	}
}

// TestMergeOfShardsEqualsWhole proves Merge is exact: recording a sample
// stream across N shard histograms and merging them yields bucket-for-
// bucket the same state as recording everything into one histogram.
func TestMergeOfShardsEqualsWhole(t *testing.T) {
	const shards = 4
	whole := NewHistogram()
	parts := make([]*Histogram, shards)
	for i := range parts {
		parts[i] = NewHistogram()
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		v := time.Duration(rng.Int63n(int64(time.Minute)))
		whole.Record(v)
		parts[i%shards].Record(v)
	}
	merged := NewHistogram()
	for _, p := range parts {
		merged.Merge(p)
	}
	if merged.Count() != whole.Count() || merged.Mean() != whole.Mean() ||
		merged.Min() != whole.Min() || merged.Max() != whole.Max() {
		t.Fatalf("merged summary %v != whole %v", merged, whole)
	}
	for i := range whole.counts {
		if merged.counts[i] != whole.counts[i] {
			t.Fatalf("bucket %d: merged %d != whole %d", i, merged.counts[i], whole.counts[i])
		}
	}
}

// TestConcurrentRecordProperty is the -race property test: with recorders
// running concurrently, the recorded count always equals issued minus
// in-flight — no increment is lost or double-counted — and at quiescence
// the bucket sum equals the count.
func TestConcurrentRecordProperty(t *testing.T) {
	const workers = 8
	const perWorker = 20000
	h := NewHistogram()
	var issued atomic.Uint64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWorker; i++ {
				issued.Add(1)
				h.Record(time.Duration(rng.Int63n(int64(time.Second))))
			}
		}(int64(w + 10))
	}
	// Sample the invariant while recording is live: Count never exceeds
	// issued (a record is only visible after its issue), and never lags
	// by more than the possible in-flight window (one per worker).
	for i := 0; i < 100; i++ {
		iss := issued.Load()
		n := h.Count()
		if n > iss {
			t.Fatalf("count %d exceeds issued %d", n, iss)
		}
	}
	wg.Wait()
	if got, want := h.Count(), uint64(workers*perWorker); got != want {
		t.Fatalf("count = %d, want %d (issued minus zero in-flight)", got, want)
	}
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i]
	}
	if sum != h.Count() {
		t.Fatalf("bucket sum %d != count %d", sum, h.Count())
	}
}

// TestRecordDoesNotAllocate pins the 0-alloc record path.
func TestRecordDoesNotAllocate(t *testing.T) {
	h := NewHistogram()
	if n := testing.AllocsPerRun(1000, func() { h.Record(123456 * time.Nanosecond) }); n != 0 {
		t.Fatalf("Record allocates %v times per call", n)
	}
}

// TestEmptyHistogram pins the zero-sample contract: every reader returns 0.
func TestEmptyHistogram(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.99) != 0 {
		t.Fatalf("empty histogram not all-zero: %v", h)
	}
	h.Record(-time.Second) // negative clamps to zero, does not corrupt
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative record mishandled: %v", h)
	}
}
