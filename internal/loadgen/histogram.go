// Package loadgen is the SLO measurement harness: an open-loop
// (Poisson-arrival) load generator over the netfront wire protocol, with
// fixed-bucket log-linear latency histograms and per-class / per-tenant
// accounting. Open-loop means the arrival schedule is drawn up front from a
// seeded exponential inter-arrival process and never waits on completions —
// a server that slows down faces the same offered load, which is what
// exposes tail latency. A closed-loop driver (like the throughput
// benchmarks) self-throttles when the server queues, so it systematically
// understates p99 under overload; see ARCHITECTURE.md "Tail latency & SLOs"
// for the full rationale and the tuning results the harness produced.
//
// The package splits into three layers: Histogram (concurrent, allocation-
// free recording with HdrHistogram-style log-linear buckets), Run (the
// open-loop scheduler over an abstract Target), and ClientTarget (the
// Target that drives a live netfront front end — one-shot, stream and batch
// traffic, multi-tenant, optional hedging — through netfront/client).
package loadgen

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: values 0..2·hSub-1 map exactly, one bucket per
// value; above that, each power of two splits into hSub linear sub-buckets,
// so the relative quantization error is bounded by 1/hSub (~3%) at every
// magnitude. The geometry is fixed — every Histogram has identical buckets,
// which is what makes Merge exact (a merge of shard histograms equals the
// histogram of the union of their samples, bucket for bucket).
const (
	hSubBits = 5
	hSub     = 1 << hSubBits // 32 linear sub-buckets per octave
	// hBuckets covers every nonnegative int64: the top octave (bit 62) has
	// shift 62-hSubBits, and indexes run linearly below that.
	hBuckets = (62-hSubBits)*hSub + 2*hSub
)

// bucketIndex maps a nonnegative value to its bucket. Values below 2·hSub
// are their own bucket; above, the index is log-linear in the value.
func bucketIndex(v int64) int {
	if v < 2*hSub {
		return int(v)
	}
	msb := bits.Len64(uint64(v)) - 1
	shift := uint(msb - hSubBits)
	return int(shift)<<hSubBits + hSub + int((uint64(v)>>shift)&(hSub-1))
}

// bucketLow returns the smallest value that maps to bucket i — the exact
// inverse of bucketIndex on bucket boundaries.
func bucketLow(i int) int64 {
	if i < 2*hSub {
		return int64(i)
	}
	shift := uint(i-hSub) >> hSubBits
	sub := int64((i - hSub) & (hSub - 1))
	return (hSub + sub) << shift
}

// Histogram is a fixed-bucket log-linear latency histogram in the
// HdrHistogram style: Record is wait-free, allocation-free and safe for any
// number of concurrent recorders, resolution is ~3% relative at every
// magnitude, and the value domain (nanoseconds) covers every nonnegative
// time.Duration. The zero value is not ready; use NewHistogram.
type Histogram struct {
	counts []uint64 // hBuckets atomic counters
	count  atomic.Uint64
	sum    atomic.Uint64
	max    atomic.Int64
	min    atomic.Int64
}

// NewHistogram returns an empty histogram (one fixed ~15 KiB bucket array;
// recording never allocates again).
func NewHistogram() *Histogram {
	h := &Histogram{counts: make([]uint64, hBuckets)}
	h.min.Store(int64(^uint64(0) >> 1)) // MaxInt64 until the first Record
	return h
}

// Record files one observation. Negative durations clamp to zero. Safe for
// concurrent use; never allocates.
func (h *Histogram) Record(d time.Duration) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	atomic.AddUint64(&h.counts[bucketIndex(v)], 1)
	h.count.Add(1)
	h.sum.Add(uint64(v))
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// Count returns how many observations have been recorded.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the arithmetic mean of all observations (exact, not
// quantized — the sum is tracked alongside the buckets), zero when empty.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Max returns the largest recorded value (exact), zero when empty.
func (h *Histogram) Max() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.max.Load())
}

// Min returns the smallest recorded value (exact), zero when empty.
func (h *Histogram) Min() time.Duration {
	if h.count.Load() == 0 {
		return 0
	}
	return time.Duration(h.min.Load())
}

// Quantile returns the q-quantile (q in [0,1]) as the lower boundary of the
// bucket holding the ceil(q·count)-th smallest observation — a value no
// larger than the true quantile, and within one bucket width (≤ ~3%
// relative) below it. Quantile(0) is the first nonempty bucket's boundary;
// Quantile(1) the last's. Returns zero on an empty histogram. Concurrent
// recording during a read yields a momentary snapshot, not a torn one —
// each bucket is read atomically.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(n))
	if rank >= n {
		rank = n - 1
	}
	var seen uint64
	for i := range h.counts {
		c := atomic.LoadUint64(&h.counts[i])
		if c == 0 {
			continue
		}
		seen += c
		if seen > rank {
			return time.Duration(bucketLow(i))
		}
	}
	// Concurrent recording raced count ahead of the buckets; the last
	// nonempty bucket is the best available answer.
	for i := len(h.counts) - 1; i >= 0; i-- {
		if atomic.LoadUint64(&h.counts[i]) != 0 {
			return time.Duration(bucketLow(i))
		}
	}
	return 0
}

// Merge folds o into h bucket by bucket. Because every histogram shares one
// fixed geometry, merging shard histograms is exact: the result is
// identical to having recorded every observation into one histogram.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := atomic.LoadUint64(&o.counts[i]); c != 0 {
			atomic.AddUint64(&h.counts[i], c)
		}
	}
	h.count.Add(o.count.Load())
	h.sum.Add(o.sum.Load())
	if om := o.max.Load(); o.count.Load() > 0 && om > h.max.Load() {
		h.max.Store(om)
	}
	if om := o.min.Load(); o.count.Load() > 0 && om < h.min.Load() {
		h.min.Store(om)
	}
}

// String summarizes the distribution at the standard reporting quantiles.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d p50=%v p90=%v p99=%v p99.9=%v max=%v",
		h.Count(), h.Quantile(0.50), h.Quantile(0.90), h.Quantile(0.99), h.Quantile(0.999), h.Max())
}
