// Streaming client: continuous audio to an omg-serve front end over a Unix
// socket, results arriving through per-hop callbacks in hop order.
//
// It demonstrates the network serving edge (internal/netfront): a stream is
// opened over the wire, audio is sent in arbitrary-size chunks, and the
// server — one shared core.Server worker pool — classifies one fingerprint
// per completed 20 ms hop, pushing each result back as it completes. A
// one-shot classification and a small batch round out the protocol's three
// request kinds.
//
// Run against a live server:
//
//	go run ./cmd/omg-serve -unix /tmp/omg.sock &
//	go run ./examples/streaming-client -sock /tmp/omg.sock
//
// Run standalone (no server flag): the example stands up an in-process
// front end on a temporary socket first, so it works out of the box.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func main() {
	sock := flag.String("sock", "", "Unix socket of a running omg-serve (empty: serve in-process)")
	flag.Parse()

	path := *sock
	if path == "" {
		// No server given: stand one up in-process, exactly as omg-serve
		// would (same model seed, so labels match a default omg-serve).
		dir, err := os.MkdirTemp("", "omg-stream")
		if err != nil {
			log.Fatal(err)
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "omg.sock")
		model, err := tflm.BuildRandomTinyConv(1, 7)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(model, core.ServerConfig{Workers: 2})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		l, err := net.Listen("unix", path)
		if err != nil {
			log.Fatal(err)
		}
		fe := netfront.NewFrontEnd(srv, netfront.Config{})
		go fe.Serve(l)
		defer fe.Close()
		fmt.Println("serving in-process on", path)
	}

	c, err := client.Dial("unix", path)
	if err != nil {
		log.Fatalf("dial %s: %v (is omg-serve running?)", path, err)
	}
	defer c.Close()

	// Continuous audio: a few synthesized keywords back to back, as a
	// microphone would deliver them.
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	var signal []int16
	for i, word := range []string{"yes", "no", "stop", "go"} {
		signal = append(signal, gen.Utterance(word, i, 0)...)
	}

	// The stream: results arrive through this callback, strictly in hop
	// order, while we are still sending audio.
	s, err := c.OpenStream(func(hop uint64, label int, err error) {
		if err != nil {
			fmt.Printf("  hop %3d: error: %v\n", hop, err)
			return
		}
		fmt.Printf("  hop %3d: class %d (%s)\n", hop, label, speechcmd.LabelName(label))
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streaming %d samples in 1000-sample chunks:\n", len(signal))
	for off := 0; off < len(signal); off += 1000 {
		end := min(off+1000, len(signal))
		if err := s.Send(signal[off:end]); err != nil {
			log.Fatal(err)
		}
	}
	hops, err := s.Close() // flushes: every callback has fired
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stream closed after %d hops\n\n", hops)

	// The other two request kinds over the same connection.
	label, err := c.Classify(gen.Utterance("left", 9, 0))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one-shot: class %d (%s)\n", label, speechcmd.LabelName(label))

	batch := [][]int16{gen.Utterance("up", 4, 0), gen.Utterance("down", 5, 0)}
	labels, err := c.ClassifyBatch(batch)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch: classes %v\n", labels)
}
