// License revocation: the §V mechanism that lets the vendor keep control of
// its model after it left the building. The vendor "can actively manage the
// access of U to the model by either sending or not sending the symmetric
// key KU" — this example walks an expiry/renewal cycle.
//
//	go run ./examples/license-revocation
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func main() {
	rng := omgcrypto.NewDRBG("revocation-example")
	root, err := omgcrypto.NewIdentity(rng, "device-vendor")
	if err != nil {
		log.Fatal(err)
	}
	vendorID, err := omgcrypto.NewIdentity(rng, "model-vendor")
	if err != nil {
		log.Fatal(err)
	}
	model, err := tflm.BuildRandomTinyConv(1, 9)
	if err != nil {
		log.Fatal(err)
	}
	device, err := core.NewDevice(core.DeviceConfig{
		Root: root, Rand: omgcrypto.NewDRBG("revocation-device"), EnclaveKeyBits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := core.NewVendor(rng, root.Public(), vendorID, model, 1)
	if err != nil {
		log.Fatal(err)
	}
	user, err := core.NewUser(root.Public(), vendor.Public())
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewSession(device, vendor, user, rng)

	// Day 0: subscription active.
	if err := session.Prepare(vendor.Public()); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	device.Speak(gen.Utterance("on", 1, 0))
	if _, err := session.Query(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("day 0: subscription active — queries served from the enclave")

	// Day 30: subscription expires. The vendor revokes; the encrypted model
	// is still on the device's flash, but the next enclave start cannot
	// obtain KU.
	vendor.Revoke(user.VerifiedEnclaveKey())
	if err := session.App.Teardown(); err != nil {
		log.Fatal(err)
	}
	app, err := core.LaunchEnclave(device, vendor.Public(), omgcrypto.NewDRBG("relaunch-1"))
	if err != nil {
		log.Fatal(err)
	}
	session.App = app
	if err := session.Initialize(); err != nil {
		fmt.Println("day 30: license expired —", err)
	} else {
		log.Fatal("BUG: revoked device obtained the key")
	}
	if session.App.Ready() {
		log.Fatal("BUG: model decrypted without a license")
	}
	fmt.Println("        the ciphertext on flash is inert without KU")

	// Day 31: the user renews. Reinstate and the same ciphertext serves
	// again — no re-provisioning needed (Fig. 2: steps 3–4 stay skipped).
	vendor.Reinstate(user.VerifiedEnclaveKey())
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	device.Speak(gen.Utterance("off", 1, 1))
	res, err := session.Query()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("day 31: renewed — enclave classifies again (%q)\n", speechcmd.LabelName(res.Label))
}
