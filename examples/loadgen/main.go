// Load generation: measuring tail latency with the open-loop SLO harness
// (internal/loadgen) against an in-process front end.
//
// It demonstrates the harness's three layers: a Poisson arrival schedule
// that never waits on completions (open-loop — a slow server faces the full
// offered load), per-class log-linear latency histograms with
// p50/p90/p99/p99.9, and multi-tenant traffic with a Jain fairness index.
// The same rig, pointed at a live server with more knobs, is
// cmd/omg-loadgen; the rationale and tuning results live in ARCHITECTURE.md
// "Tail latency & SLOs".
//
// Run against a live server:
//
//	go run ./cmd/omg-serve &
//	go run ./examples/loadgen -addr 127.0.0.1:7071
//
// Run standalone (no -addr): the example stands up an in-process front end
// on a loopback listener first, so it works out of the box.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netfront"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func main() {
	addr := flag.String("addr", "", "TCP address of a running omg-serve (empty: serve in-process)")
	rate := flag.Float64("rate", 300, "offered load, requests/second")
	dur := flag.Duration("duration", 2*time.Second, "run length")
	flag.Parse()

	target := *addr
	if target == "" {
		// Stand up the same engine omg-serve fronts: worker pool, queue
		// backpressure, wire protocol — all in-process on a loopback port.
		model, err := tflm.BuildRandomTinyConv(1, 7)
		if err != nil {
			log.Fatal(err)
		}
		srv, err := core.NewServer(model, core.ServerConfig{Workers: 2, Queue: 32})
		if err != nil {
			log.Fatal(err)
		}
		defer srv.Close()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		fe := netfront.NewFrontEnd(srv, netfront.Config{})
		go fe.Serve(l)
		defer fe.Close()
		target = l.Addr().String()
	}

	// The target drives the wire protocol: two tenants, a mixed profile of
	// one-shot and batch requests, four connections per tenant.
	utt := speechcmd.NewGenerator(speechcmd.DefaultConfig()).Utterance("yes", 3, 0)
	tenants := []loadgen.TenantSpec{{Name: "acme", Weight: 3}, {Name: "trial", Weight: 1}}
	tg, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:   "tcp",
		Addr:      target,
		Tenants:   []string{"acme", "trial"},
		Conns:     4,
		Utterance: utt,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer tg.Close()

	// Open loop: the schedule below is fixed by (seed, rate, duration)
	// before the first request fires; completions never slow it down.
	rep, err := loadgen.Run(loadgen.Config{
		Rate:     *rate,
		Duration: *dur,
		Seed:     42,
		Mix:      loadgen.Mix{OneShot: 4, Batch: 1},
		Tenants:  tenants,
	}, tg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("offered %d, completed %d, busy %d, errors %d in %v\n",
		rep.Offered, rep.Completed, rep.Busy, rep.Errors, rep.Elapsed.Round(time.Millisecond))
	fmt.Printf("one-shot p50=%v p99=%v p99.9=%v\n",
		rep.Latency(loadgen.ClassOneShot).Quantile(0.50),
		rep.Latency(loadgen.ClassOneShot).Quantile(0.99),
		rep.Latency(loadgen.ClassOneShot).Quantile(0.999))
	fmt.Printf("tenant completions %v, Jain fairness %.3f\n", rep.TenantDone, rep.Fairness())
}
