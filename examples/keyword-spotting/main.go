// Keyword spotting end to end: train the paper's tiny_conv on the synthetic
// Speech Commands corpus, deploy it under OMG, and stream a sequence of
// spoken commands through the enclave with suspend/resume between queries
// (the §V operation-phase core reallocation).
//
//	go run ./examples/keyword-spotting
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/train"
)

func main() {
	// Train a real model (a couple of seconds on a laptop).
	cfg := train.DefaultPipeline()
	cfg.Spec = speechcmd.DatasetSpec{Speakers: 32, TakesPerLabel: 2}
	cfg.Train.Epochs = 8
	fmt.Println("training tiny_conv on the synthetic corpus…")
	res, err := train.RunPipeline(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quantized test accuracy: %.1f%%\n\n", res.QuantTestAcc*100)

	// Deploy under OMG.
	rng := omgcrypto.NewDRBG("kws-example")
	root, err := omgcrypto.NewIdentity(rng, "device-vendor")
	if err != nil {
		log.Fatal(err)
	}
	vendorID, err := omgcrypto.NewIdentity(rng, "model-vendor")
	if err != nil {
		log.Fatal(err)
	}
	device, err := core.NewDevice(core.DeviceConfig{
		Root: root, Rand: omgcrypto.NewDRBG("kws-device"), EnclaveKeyBits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := core.NewVendor(rng, root.Public(), vendorID, res.Model, 1)
	if err != nil {
		log.Fatal(err)
	}
	user, err := core.NewUser(root.Public(), vendor.Public())
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewSession(device, vendor, user, rng)
	if err := session.Prepare(vendor.Public()); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}

	// Stream commands. Between queries the enclave core is handed back to
	// the OS while the model stays locked in memory.
	gen := speechcmd.NewGenerator(cfg.Corpus)
	script := []string{"yes", "up", "left", "stop", "go", "no"}
	correct := 0
	var busy time.Duration
	for i, word := range script {
		device.Speak(gen.Utterance(word, 500+i, 0)) // unseen speaker
		encCore := session.App.Enclave().Core()
		encCore.ResetCycles()
		resq, err := session.Query()
		if err != nil {
			log.Fatal(err)
		}
		elapsed := encCore.Elapsed()
		busy += elapsed
		mark := "✗"
		if speechcmd.LabelName(resq.Label) == word {
			correct++
			mark = "✓"
		}
		fmt.Printf("%s heard %-6q → %-8q on core %d  (%.2f ms simulated)\n",
			mark, word, speechcmd.LabelName(resq.Label), encCore.ID(), float64(elapsed.Microseconds())/1000)

		// Give the core back to the OS until the next hotword.
		if err := session.App.Suspend(); err != nil {
			log.Fatal(err)
		}
		if err := session.App.Resume(); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\n%d/%d commands recognized; %.1f ms of enclave compute for %d s of audio\n",
		correct, len(script), float64(busy.Microseconds())/1000, len(script))
}
