// Model update and rollback protection: the vendor ships v2 of its model
// and the §V nonce binding ("As the key KU depends on the nonce n, this
// also prevents rollback attacks") keeps a malicious OS from reviving v1.
//
//	go run ./examples/model-update
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/tflm"
)

func main() {
	rng := omgcrypto.NewDRBG("update-example")
	root, err := omgcrypto.NewIdentity(rng, "device-vendor")
	if err != nil {
		log.Fatal(err)
	}
	vendorID, err := omgcrypto.NewIdentity(rng, "model-vendor")
	if err != nil {
		log.Fatal(err)
	}
	v1, err := tflm.BuildRandomTinyConv(1, 101)
	if err != nil {
		log.Fatal(err)
	}
	device, err := core.NewDevice(core.DeviceConfig{
		Root: root, Rand: omgcrypto.NewDRBG("update-device"), EnclaveKeyBits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := core.NewVendor(rng, root.Public(), vendorID, v1, 1)
	if err != nil {
		log.Fatal(err)
	}
	user, err := core.NewUser(root.Public(), vendor.Public())
	if err != nil {
		log.Fatal(err)
	}
	session := core.NewSession(device, vendor, user, rng)
	if err := session.Prepare(vendor.Public()); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running model v%d\n", session.App.Version())

	// The OS squirrels away the v1 ciphertext for later mischief.
	staleBlob, _ := device.SoC.Flash().Load(core.ModelBlobName)

	// The vendor ships v2 (e.g. retrained on more data). The enclave
	// re-runs steps 2–4 to fetch the new ciphertext.
	v2, err := tflm.BuildRandomTinyConv(1, 202)
	if err != nil {
		log.Fatal(err)
	}
	if err := vendor.UpdateModel(v2, 2); err != nil {
		log.Fatal(err)
	}
	nonce, _ := omgcrypto.RandomBytes(rng, 16)
	report, chain, err := session.App.Attest(nonce)
	if err != nil {
		log.Fatal(err)
	}
	pkg, err := vendor.ProvisionModel(report, chain, nonce)
	if err != nil {
		log.Fatal(err)
	}
	if err := session.App.StoreModelPackage(pkg); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("updated to model v%d\n", session.App.Version())

	// Rollback attempt: the OS restores the stale v1 ciphertext and asks
	// the vendor for a key. The vendor only licenses the current version,
	// and v1's KU no longer exists.
	device.SoC.Flash().Store(core.ModelBlobName, staleBlob)
	req, err := session.App.RequestKey()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OS restored the v%d ciphertext and requests its key…\n", req.Version)
	if _, err := vendor.IssueKey(req); err != nil {
		fmt.Println("vendor refuses:", err)
	} else {
		log.Fatal("BUG: superseded version re-licensed")
	}

	// Restore v2 honestly and continue.
	if err := session.App.StoreModelPackage(pkg); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("device continues on v%d — rollback defeated\n", session.App.Version())
}
