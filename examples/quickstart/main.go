// Quickstart: the minimal OFFLINE MODEL GUARD deployment.
//
// It stands up a simulated ARM device, a model vendor and a user, runs the
// three protocol phases of the paper (§V), and classifies one spoken word —
// about the smallest complete use of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

func main() {
	// Long-term identities: the device vendor's root (burned into the SoC
	// at the factory) and the model vendor's signing key (pinned in the
	// open-source enclave image).
	rng := omgcrypto.NewDRBG("quickstart")
	root, err := omgcrypto.NewIdentity(rng, "device-vendor")
	if err != nil {
		log.Fatal(err)
	}
	vendorID, err := omgcrypto.NewIdentity(rng, "model-vendor")
	if err != nil {
		log.Fatal(err)
	}

	// The vendor's intellectual property: a tiny_conv keyword spotter.
	// (Random weights for a fast start — examples/keyword-spotting trains
	// a real one.)
	model, err := tflm.BuildRandomTinyConv(1, 1)
	if err != nil {
		log.Fatal(err)
	}

	// The cast: U's phone, V's licensing service, U herself.
	device, err := core.NewDevice(core.DeviceConfig{
		Root: root, Rand: omgcrypto.NewDRBG("quickstart-device"), EnclaveKeyBits: 1024,
	})
	if err != nil {
		log.Fatal(err)
	}
	vendor, err := core.NewVendor(rng, root.Public(), vendorID, model, 1)
	if err != nil {
		log.Fatal(err)
	}
	user, err := core.NewUser(root.Public(), vendor.Public())
	if err != nil {
		log.Fatal(err)
	}

	// Phases I and II: attested enclave, encrypted provisioning, licensed
	// key delivery, in-enclave decryption.
	session := core.NewSession(device, vendor, user, rng)
	if err := session.Prepare(vendor.Public()); err != nil {
		log.Fatal(err)
	}
	if err := session.Initialize(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("enclave attested, model provisioned & decrypted inside the enclave")

	// Phase III: speak into the microphone and classify — fully offline.
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	device.Speak(gen.Utterance("yes", 1, 0))
	result, err := session.Query()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user said %q, enclave classified it as %q (label %d)\n",
		"yes", speechcmd.LabelName(result.Label), result.Label)

	// The commodity OS can see the ciphertext on flash, but not the model.
	if _, ok := device.SoC.Flash().Load(core.ModelBlobName); ok {
		fmt.Println("untrusted flash holds the encrypted model package (ciphertext only)")
	}
	if err := device.SoC.Read(device.Sanctuary.OSCore(), session.App.Enclave().PrivBase(), make([]byte, 4)); err != nil {
		fmt.Println("commodity OS denied access to enclave memory:", err)
	}
}
