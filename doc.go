// Package repro is a from-scratch Go reproduction of "Offline Model Guard:
// Secure and Private ML on Mobile Devices" (Bayerl et al., DATE 2020).
//
// The implementation lives under internal/: a cycle-approximate ARM SoC
// simulator with TrustZone and SANCTUARY enclaves, a TFLM-style int8
// inference engine, the paper's audio frontend and training pipeline, the
// OMG three-phase protocol, and HE/SMPC baselines. See README.md for the
// map and DESIGN.md for the design rationale; cmd/omg-bench regenerates
// every number in EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) cover every table and
// figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
//
// # Inference hot path
//
// The engine's linear-algebra hot path is an im2col+GEMM pipeline
// (internal/tflm/gemm.go): convolutions pack receptive fields into a column
// matrix (padding is absorbed by the packer, which fills border patches
// with the input zero point) and run a blocked int8×int8→int32 GEMM with
// per-filter zero-point corrections bias[oc] − inZP·Σw[oc] folded into the
// accumulator seeds. Interpreters prep every node at construction —
// requantization multipliers, correction terms, im2col and softmax scratch
// — so Invoke is allocation-free. Every optimized kernel has a scalar
// reference twin (internal/tflm/op_ref.go) and is kept bit-exact against
// it by randomized equivalence tests; new operators must ship the same
// pair. The simulated-device cycle model (NodeCycles) is untouched by all
// of this: host kernels are fast, modeled hardware costs are calibrated.
//
// # Streaming serving
//
// internal/core.Server is the persistent host-throughput layer: long-lived
// worker goroutines — each owning a private interpreter over a
// weight-sharing tflm.Model.Clone plus a private zero-alloc DSP frontend —
// fed by a buffered submission queue (Submit/TrySubmit for utterances,
// OpenStream+SubmitStream for continuous audio, RunBatch for whole
// batches). A full queue is the backpressure signal; Close drains in-flight
// work. core.Pipeline survives as a thin compatibility wrapper. Experiment
// E11 (omg-bench), BenchmarkBatchInference and BenchmarkServerThroughput
// measure its scaling.
//
// Continuous audio goes through dsp.Streamer, the incremental face of the
// frontend: it holds a ring of per-frame log-mel feature rows, computes one
// FFT per newly completed 20 ms hop, and assembles the current 49×43
// fingerprint by rotation — ~49× less frontend work per window than full
// recomputation in steady state, with zero allocations, and bit-exact
// against ExtractInto (BenchmarkStreamingExtract, E12).
//
// On the protected path, KWSApp.QueryBatch(n) runs n capture→extract→invoke
// iterations inside a single enclave Run, pulling several utterances per
// SMC round trip through the shared-SW window and reusing app-owned
// scratch, which amortizes the world-switch overhead of the per-query
// Table-I path (visible in E12's simulated-time column; host wall time is
// extraction/GEMM-bound and therefore at parity).
package repro
