// Package repro is a from-scratch Go reproduction of "Offline Model Guard:
// Secure and Private ML on Mobile Devices" (Bayerl et al., DATE 2020).
//
// The implementation lives under internal/: a cycle-approximate ARM SoC
// simulator with TrustZone and SANCTUARY enclaves, a TFLM-style int8
// inference engine, the paper's audio frontend and training pipeline, the
// OMG three-phase protocol, and HE/SMPC baselines. See README.md for the
// map and DESIGN.md for the design rationale; cmd/omg-bench regenerates
// every number in EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) cover every table and
// figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
//
// # Inference hot path
//
// The engine's linear-algebra hot path is an im2col+GEMM pipeline
// (internal/tflm/gemm.go): convolutions pack receptive fields into a column
// matrix (padding is absorbed by the packer, which fills border patches
// with the input zero point) and run a register-blocked int8×int8→int32
// GEMM with per-filter zero-point corrections bias[oc] − inZP·Σw[oc]
// folded into the accumulator seeds. Weights are repacked once at plan
// time into 4-filter interleaved panels (packPanels), so the micro-kernel
// — two im2col rows against one panel, depth-unrolled ×4 — reads one
// contiguous weight stream and shares every load across eight
// accumulators; the requantization constants (multiplier decomposition,
// rounding masks) are likewise hoisted to plan time. Interpreters prep
// every node at construction, so Invoke is allocation-free.
//
// Interpreter.PlanBatch/InvokeBatch is the stacked-utterance face of the
// same engine: up to the planned capacity of utterances are staged into
// per-tensor slabs (BatchInput) and classified in one pass over the graph
// — each convolution replays a plan-compiled im2col copy program (padding
// prefilled once with the zero point) and runs the patch rows of each
// utterance through the shared weight panels while they are cache-hot,
// pure-copy reshapes alias away entirely, and softmax sweeps all stacked
// rows at once. Output rows (BatchOutput) stay valid until the next
// InvokeBatch. Results are bit-exact with serial Invoke, and cycle
// metering still charges every utterance's full simulated cost.
//
// Every optimized kernel has a scalar reference twin
// (internal/tflm/op_ref.go) and is kept bit-exact against it by randomized
// equivalence tests (int32 accumulation reassociates exactly modulo 2^32);
// new operators must ship the same pair. The simulated-device cycle model
// (NodeCycles) is untouched by all of this: host kernels are fast, modeled
// hardware costs are calibrated.
//
// # Real-input FFT frontend
//
// The fingerprint frontend (internal/dsp) feeds real audio frames, so its
// spectrum comes from rfftFixed: the FFTSize real samples are packed as an
// FFTSize/2-point complex FFT (even samples real, odd imaginary) and the
// half-spectra are unzipped in a split post-pass — about half the
// butterflies and twiddle loads per frame of the full complex transform,
// with the same 1/FFTSize output scaling. The per-frontend tables pin both
// twiddle sets and the precomputed bit-reversal permutations. Feature
// bytes match the old full-size-FFT path within one least-significant
// step: the split post-pass rounds where the discarded butterfly stage
// truncated. FFTFixed and FFTFloat remain as reference transforms with
// error-bound tests, and Frontend.Cycles models the halved butterfly count
// plus the post-pass (hw.CyclesPerRFFTPostBin).
//
// # Streaming serving
//
// internal/core.Server is the persistent host-throughput layer: long-lived
// worker goroutines — each owning a private interpreter over a
// weight-sharing tflm.Model.Clone plus a private zero-alloc DSP frontend —
// fed by a buffered submission queue (Submit/TrySubmit for utterances,
// OpenStream+SubmitStream for continuous audio, RunBatch for whole
// batches). A full queue is the backpressure signal; Close drains in-flight
// work. core.Pipeline survives as a thin compatibility wrapper. Experiment
// E11 (omg-bench), BenchmarkBatchInference and BenchmarkServerThroughput
// measure its scaling.
//
// Continuous audio goes through dsp.Streamer, the incremental face of the
// frontend: it holds a ring of per-frame log-mel feature rows, computes one
// FFT per newly completed 20 ms hop, and assembles the current 49×43
// fingerprint by rotation — ~49× less frontend work per window than full
// recomputation in steady state, with zero allocations, and bit-exact
// against ExtractInto (BenchmarkStreamingExtract, E12).
//
// Server workers drain the submission queue in batches: when ≥ 2
// utterances are pending a worker classifies up to ServerConfig.MaxBatch
// of them through one planned InvokeBatch call, and submission tickets
// recycle through a freelist (Pending.Release), keeping the steady-state
// submission path allocation-free.
//
// On the protected path, KWSApp.QueryBatch(n) runs n capture→extract→invoke
// iterations inside a single enclave Run, pulling several utterances per
// SMC round trip through the shared-SW window, classifying each
// window-full through one stacked InvokeBatch, and reusing app-owned
// scratch, which amortizes the world-switch overhead of the per-query
// Table-I path (visible in E12's simulated-time column; host wall time is
// extraction/GEMM-bound and therefore at parity).
package repro
