// Package repro is a from-scratch Go reproduction of "Offline Model Guard:
// Secure and Private ML on Mobile Devices" (Bayerl et al., DATE 2020).
//
// The implementation lives under internal/: a cycle-approximate ARM SoC
// simulator with TrustZone and SANCTUARY enclaves, a TFLM-style int8
// inference engine, the paper's audio frontend and training pipeline, the
// OMG three-phase protocol, and HE/SMPC baselines. See README.md for the
// map and DESIGN.md for the design rationale; cmd/omg-bench regenerates
// every number in EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) cover every table and
// figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
//
// # Inference hot path
//
// The engine's linear-algebra hot path is an im2col+GEMM pipeline
// (internal/tflm/gemm.go): convolutions pack receptive fields into a column
// matrix (padding is absorbed by the packer, which fills border patches
// with the input zero point) and run a blocked int8×int8→int32 GEMM with
// per-filter zero-point corrections bias[oc] − inZP·Σw[oc] folded into the
// accumulator seeds. Interpreters prep every node at construction —
// requantization multipliers, correction terms, im2col and softmax scratch
// — so Invoke is allocation-free. Every optimized kernel has a scalar
// reference twin (internal/tflm/op_ref.go) and is kept bit-exact against
// it by randomized equivalence tests; new operators must ship the same
// pair. The simulated-device cycle model (NodeCycles) is untouched by all
// of this: host kernels are fast, modeled hardware costs are calibrated.
//
// # Batch serving
//
// internal/core.Pipeline is the host-throughput layer: a pool of workers,
// each owning a private interpreter over a weight-sharing tflm.Model.Clone
// plus a private zero-alloc DSP frontend (dsp.Frontend.ExtractInto), fans
// batches of utterances across GOMAXPROCS workers via RunBatch. Experiment
// E11 (omg-bench) and BenchmarkBatchInference measure its scaling.
package repro
