// Package repro is a from-scratch Go reproduction of "Offline Model Guard:
// Secure and Private ML on Mobile Devices" (Bayerl et al., DATE 2020).
//
// The implementation lives under internal/: a cycle-approximate ARM SoC
// simulator with TrustZone and SANCTUARY enclaves, a TFLM-style int8
// inference engine, the paper's audio frontend and training pipeline, the
// OMG three-phase protocol, and HE/SMPC baselines. See README.md for the
// map and DESIGN.md for the design rationale; cmd/omg-bench regenerates
// every number in EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) cover every table and
// figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
package repro
