// Package repro is a from-scratch Go reproduction of "Offline Model Guard:
// Secure and Private ML on Mobile Devices" (Bayerl et al., DATE 2020).
//
// The implementation lives under internal/: a cycle-approximate ARM SoC
// simulator with TrustZone and SANCTUARY enclaves, a TFLM-style int8
// inference engine, the paper's audio frontend and training pipeline, the
// OMG three-phase protocol, a network serving edge, and HE/SMPC baselines.
// ARCHITECTURE.md is the onboarding entry point — the data-flow map, the
// ownership and bit-exactness rules, and the metering stance in one place.
// README.md has the package map, DESIGN.md the design rationale;
// cmd/omg-bench regenerates every number in EXPERIMENTS.md.
//
// The benchmarks in this package (bench_test.go) cover every table and
// figure of the paper's evaluation; run them with
//
//	go test -bench=. -benchmem .
//
// # Inference hot path
//
// The engine's linear-algebra hot path is an im2col+GEMM pipeline
// (internal/tflm/gemm.go): convolutions replay a plan-compiled im2col copy
// program into a zero-point-prefilled column slab (padding handling and
// clip arithmetic ran once at prep time) and run a SWAR int8×int8→int32
// GEMM with per-filter zero-point corrections bias[oc] − inZP·Σw[oc]
// folded into the accumulator seeds. The SWAR kernel (internal/tflm/
// swar.go) biases both operands to unsigned bytes and packs three depth
// positions per uint64 at 21-bit lane spacing — activations ascending,
// weights reversed — so one 64-bit multiply carries a three-term dot
// product in bits 42..62 with provably no cross-lane carries; raw products
// accumulate for eight groups before a single shift+mask folds the lane
// out, and the bias corrections (−128·Σw at prep time, −128·Σu per packed
// row) restore the exact signed sum. Weights repack once at plan time into
// 4-filter interleaved panels of packed words (packPanels); the
// requantization constants are likewise hoisted. Every intermediate is an
// exact integer, so results equal the scalar reference's wrapped int32
// accumulation modulo 2^32 — bit-exact, including the −128·−128 corner,
// which the checked-in fuzz corpus (FuzzSWARDot) pins. The depthwise
// interior rides the same primitive when its reduction axis is contiguous
// (single input channel). Interpreters prep every node at construction, so
// Invoke is allocation-free. The inner loops are additionally restructured
// so the compiler proves every slice access in range — the functions listed
// in bce_clean.txt compile with zero bounds checks, a contract `make
// bce-check` enforces; ARCHITECTURE.md "Kernel tiers" documents the idioms,
// the cache-blocking tile sizes and the experiments that were measured and
// rejected.
//
// Interpreter.PlanBatch/InvokeBatch is the stacked-utterance face of the
// same engine: up to the planned capacity of utterances are staged into
// per-tensor slabs (BatchInput) and classified in one pass over the graph
// — each convolution replays its im2col program and runs the patch rows of
// each utterance through the shared weight panels while they are
// cache-hot, pure-copy reshapes alias away entirely, and softmax sweeps
// all stacked rows at once. PlanBatchParallel additionally fans the batch
// across min(GOMAXPROCS, batch) shard contexts: utterances are
// independent, so each persistent shard worker (spawned once at plan time,
// parked on a channel between calls) runs the whole node list over a
// contiguous utterance span with its own im2col/SWAR/softmax scratch —
// the zero-allocation invariant survives, and shard count 1 degenerates to
// the serial loop. Spans execute cache-blocked: the node list sweeps a few
// utterances at a time (sized at plan time so a tile's activation rows fit
// well inside L1d) so producer output is consumed while still resident —
// an iteration-order change only, bit-identical results, but it makes
// batching a throughput win even on one core.
// Output rows (BatchOutput) stay valid until the next
// InvokeBatch. Results are bit-exact with serial Invoke, and cycle
// metering still charges every utterance's full simulated cost regardless
// of host parallelism. core.ServerConfig.BatchParallel and
// KWSApp.SetBatchParallel thread the knob through the serving layers
// (default serial: the server pool already runs one worker per core).
//
// Every optimized kernel has a scalar reference twin
// (internal/tflm/op_ref.go) and is kept bit-exact against it by randomized
// equivalence tests plus a fuzz suite for the SWAR dot product; new
// operators must ship the same pair. The simulated-device cycle model
// (NodeCycles, hw/cost.go) is untouched by all of this: host kernels are
// fast, modeled hardware costs are calibrated — SWAR and fan-out change
// wall time, never sim-cycles.
//
// # Real-input FFT frontend
//
// The fingerprint frontend (internal/dsp) feeds real audio frames, so its
// spectrum comes from rfftFixed: the FFTSize real samples are packed as an
// FFTSize/2-point complex FFT (even samples real, odd imaginary) and the
// half-spectra are unzipped in a split post-pass — about half the
// butterflies and twiddle loads per frame of the full complex transform,
// with the same 1/FFTSize output scaling. The per-frontend tables pin both
// twiddle sets and the precomputed bit-reversal permutations. The hot path
// fuses the post-pass: rfftPowerFixed squares each spectrum bin while it is
// still in registers (bit-identical to squaring rfftFixed's output), and
// log compression runs on an integer threshold table built from the float
// reference itself, so logCompressFixed equals logCompress on every input —
// the fused pipeline is byte-exact with the unfused one
// (TestFrontendFusedEquivalence). Feature bytes match the old full-size-FFT
// path within one least-significant step: the split post-pass rounds where
// the discarded butterfly stage truncated. FFTFixed and FFTFloat remain as
// reference transforms with error-bound tests, and Frontend.Cycles models
// the halved butterfly count plus the post-pass
// (hw.CyclesPerRFFTPostBin).
//
// # Streaming serving
//
// internal/core.Server is the persistent host-throughput layer: long-lived
// worker goroutines — each owning a private interpreter over a
// weight-sharing tflm.Model.Clone plus a private zero-alloc DSP frontend —
// fed by a buffered submission queue (Submit/TrySubmit for utterances,
// OpenStream+SubmitStream for continuous audio, RunBatch for whole
// batches). A full queue is the backpressure signal; Close drains in-flight
// work. core.Pipeline survives as a thin compatibility wrapper. Experiment
// E11 (omg-bench), BenchmarkBatchInference and BenchmarkServerThroughput
// measure its scaling.
//
// Continuous audio goes through dsp.Streamer, the incremental face of the
// frontend: it holds a ring of per-frame log-mel feature rows, computes one
// FFT per newly completed 20 ms hop, and assembles the current 49×43
// fingerprint by rotation — ~49× less frontend work per window than full
// recomputation in steady state, with zero allocations, and bit-exact
// against ExtractInto (BenchmarkStreamingExtract, E12).
//
// Server workers drain the submission queue in batches: when ≥ 2
// utterances are pending a worker classifies up to ServerConfig.MaxBatch
// of them through one planned InvokeBatch call, and submission tickets
// recycle through a freelist (Pending.Release), keeping the steady-state
// submission path allocation-free. Alongside ticket polling the server
// offers a callback completion path — Server.SubmitFunc invokes its
// callback on the completing worker, and Stream.OnResult delivers stream
// results strictly in hop order through a per-stream sequencer — with a
// drain-on-Close contract: every submission accepted before Close has
// completed (ticket resolved, callback fired) by the time Close returns.
//
// # Network serving edge
//
// internal/netfront turns the server into the paper's "ML-as-a-service,
// deployed offline" boundary: a length-prefixed binary protocol over TCP
// or Unix sockets (cmd/omg-serve) multiplexing three request kinds —
// one-shot utterance, open stream with chunked audio and per-hop results
// in hop order, and whole batches — from any number of connections onto
// one shared core.Server. Queue backpressure surfaces as an explicit BUSY
// reply instead of blocking the read loop, and the per-connection
// read→decode→submit path reuses pooled frames, sample buffers and
// pre-bound callbacks — 0 allocs/op in steady state. Labels over the wire
// are bit-exact with direct Server calls. internal/netfront/client is the
// Go client; BenchmarkNetServerThroughput and experiment E14 measure the
// loopback edge against the in-process ceiling, and the streaming-client
// example is the guided tour.
//
// The edge is fault-tolerant by contract — ARCHITECTURE.md "Failure
// semantics" is the authoritative statement. Wire protocol v2 replies
// carry structured errors (code + retry-after hint); worker panics are
// recovered with the pool at full strength (core.Server.InjectPanic is the
// chaos hook); queue deadlines shed stale work at dequeue; the client
// offers bounded dials, request deadlines, opt-in retry with backoff and
// jitter, and redial-with-backoff (streams fail cleanly with
// ErrStreamBroken, never duplicating hops); FrontEnd.Shutdown drains
// gracefully under a grace period (SIGTERM in cmd/omg-serve). The
// internal/netfront/faultconn package injects deterministic network chaos
// — latency, partial writes, resets, stalls, corruption — and `make chaos`
// gates every profile under the race detector.
//
// Above the single server sits core.Registry, the multi-tenant tier —
// ARCHITECTURE.md "Multi-model serving & swap contract" is the
// authoritative statement. The registry maps model ids to shard sets of
// servers behind the core.Engine interface, admits work through per-tenant
// bounded queues under deficit-round-robin weighted fair queueing (a
// flooding tenant sheds its own traffic, goodput follows configured
// weights), and hot-swaps a model's weights in place with zero dropped
// requests: Registry.Swap verifies a signed, encrypted, version-monotonic
// model package, flushes already-admitted work to the old generation
// (bit-exact on the weights it was accepted under), flips the live-set
// pointer, and drains the retired servers. Wire protocol v3 adds an
// optional hello handshake binding a connection to a tenant and model
// (acked with the model version) and CodeModelSwapped for streams pinned
// to a retired generation; cmd/omg-serve serves a registry from -models/
// -shards/-tenants flags and hot-swaps every model on SIGHUP. The
// swap-storm chaos profile gates swaps overlapping transport faults.
//
// The registry heals itself — ARCHITECTURE.md "Health, breakers &
// overload control" is the authoritative statement. Every shard carries a
// health score (consecutive hard failures + error EWMA) feeding a
// three-state circuit breaker: an open shard leaves the DRR rotation
// (traffic rides the survivors bit-exactly), half-open admits one probe,
// and a supervisor rebuilds persistently-broken shards under capped
// exponential backoff — swap always wins a race with rebuild.
// Registry.Health() snapshots it all; FrameHealth queries it over the
// wire; omg-serve dumps it on SIGUSR1. Admission adds a queue-delay
// overload controller (CoDel-style target sojourn) that sheds over-share
// tenants first with computed retry-after hints, which the client floors
// its backoff on; the client can also hedge slow one-shot requests
// (Options.Hedge, first reply wins, never for streams). The panic-storm
// chaos profile gates self-healing: breakers trip under a shard-kill
// storm, zero admitted requests are lost, and the registry recovers to
// full strength.
//
// The serving edge is held to SLOs, not just throughput — ARCHITECTURE.md
// "Tail latency & SLOs" is the authoritative statement. internal/loadgen
// is an open-loop (Poisson-arrival) generator whose offered load is a
// deterministic function of config and seed — a stalled server cannot
// slow it down — with coordinated-omission-corrected latencies recorded
// into lock-free log-linear histograms (~3% relative error, 0 allocs per
// record) and outcomes split into completed / BUSY / shed (with the
// server's retry-after hints) / protocol error plus a Jain fairness index
// over tenants. cmd/omg-loadgen is the CLI (live address or in-process
// server, benchjson-compatible -json); the loadgen example is the guided
// tour. `make slo-smoke` gates a mixed one-second run on every CI pass,
// and BenchmarkServedTailLatency gates the median-of-3 open-loop p99.
//
// On the protected path, KWSApp.QueryBatch(n) runs n capture→extract→invoke
// iterations inside a single enclave Run, pulling several utterances per
// SMC round trip through the shared-SW window, classifying each
// window-full through one stacked InvokeBatch, and reusing app-owned
// scratch, which amortizes the world-switch overhead of the per-query
// Table-I path (visible in E12's simulated-time column; host wall time is
// extraction/GEMM-bound and therefore at parity).
package repro
