package repro

// One benchmark (or benchmark group) per table/figure/claim of the paper's
// evaluation, mirroring the experiment index in DESIGN.md:
//
//	Table I / E1  BenchmarkTable1QueryPlain, BenchmarkTable1QueryOMG
//	E2            derived from the sim-ms metrics of the E1 benchmarks
//	E3            BenchmarkModelEncode, BenchmarkModelDecrypt
//	E4            BenchmarkWorldSwitch, BenchmarkSecureMicCapture
//	E5 / Fig. 2   BenchmarkPreparePhase, BenchmarkInitializePhase
//	E6            BenchmarkEnclaveLifecycle
//	E7            BenchmarkHEInference, BenchmarkMPCInference
//	E8            BenchmarkPrimeProbe
//	E10           BenchmarkModelScaling
//	(engine)      BenchmarkFFTFixed512, BenchmarkFrontendExtract,
//	              BenchmarkInterpreterInvoke, BenchmarkTrainEpoch
//
// Wall-clock numbers measure the simulator on the host; the sim-ms metric
// reports simulated device time where meaningful.

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dsp"
	"repro/internal/harness"
	"repro/internal/he"
	"repro/internal/hw"
	"repro/internal/intnet"
	"repro/internal/loadgen"
	"repro/internal/mpc"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
	"repro/internal/train"
	"repro/internal/trustzone"
)

// Shared expensive fixtures, built once per bench run.
var (
	fixOnce     sync.Once
	fixRoot     *omgcrypto.Identity
	fixVendorID *omgcrypto.Identity
	fixModel    *tflm.Model
	fixUtt      []int16
)

func fixture(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		rng := omgcrypto.NewDRBG("bench-fixture")
		var err error
		if fixRoot, err = omgcrypto.NewIdentity(rng, "device-vendor"); err != nil {
			b.Fatal(err)
		}
		if fixVendorID, err = omgcrypto.NewIdentity(rng, "acme-models"); err != nil {
			b.Fatal(err)
		}
		if fixModel, err = tflm.BuildRandomTinyConv(1, 7); err != nil {
			b.Fatal(err)
		}
		gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
		fixUtt = gen.Utterance("yes", 3, 0)
	})
}

func benchDevice(b *testing.B, seed string) *core.Device {
	b.Helper()
	fixture(b)
	dev, err := core.NewDevice(core.DeviceConfig{
		Root:           fixRoot,
		Rand:           omgcrypto.NewDRBG("bench-device-" + seed),
		EnclaveKeyBits: 1024,
		SoC:            hw.Config{BigCores: 2, LittleCores: 2, DRAMSize: 256 << 20},
	})
	if err != nil {
		b.Fatal(err)
	}
	return dev
}

func benchSession(b *testing.B, seed string) *core.Session {
	b.Helper()
	dev := benchDevice(b, seed)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	vendor, err := core.NewVendor(omgcrypto.NewDRBG("bench-vendor-"+seed), fixRoot.Public(), fixVendorID, model, 1)
	if err != nil {
		b.Fatal(err)
	}
	user, err := core.NewUser(fixRoot.Public(), vendor.Public())
	if err != nil {
		b.Fatal(err)
	}
	s := core.NewSession(dev, vendor, user, omgcrypto.NewDRBG("bench-session-"+seed))
	if err := s.Prepare(vendor.Public()); err != nil {
		b.Fatal(err)
	}
	if err := s.Initialize(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkTable1QueryOMG measures one protected query (Table I, OMG row).
func BenchmarkTable1QueryOMG(b *testing.B) {
	s := benchSession(b, "t1omg")
	encCore := s.App.Enclave().Core()
	encCore.ResetCycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Device.Speak(fixUtt)
		if _, err := s.Query(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(encCore.Elapsed().Microseconds())/1000/float64(b.N), "sim-ms/op")
}

// BenchmarkTable1QueryPlain measures the unprotected baseline (Table I).
func BenchmarkTable1QueryPlain(b *testing.B) {
	fixture(b)
	soc := hw.NewSoC(hw.Config{BigCores: 1, LittleCores: 0, DRAMSize: 64 << 20})
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	plain, err := core.NewPlainRunner(soc, 0, model)
	if err != nil {
		b.Fatal(err)
	}
	plain.Core().ResetCycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		soc.Microphone().Feed(fixUtt)
		if _, err := plain.Query(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(plain.Core().Elapsed().Microseconds())/1000/float64(b.N), "sim-ms/op")
}

// BenchmarkModelEncode serializes the model (E3's size measurement path).
func BenchmarkModelEncode(b *testing.B) {
	fixture(b)
	var size int
	for i := 0; i < b.N; i++ {
		blob, err := tflm.Encode(fixModel)
		if err != nil {
			b.Fatal(err)
		}
		size = len(blob)
	}
	b.ReportMetric(float64(size), "bytes")
}

// BenchmarkModelDecrypt covers the initialization-phase AES-GCM open of the
// ~54 kB model package (E5, step 6).
func BenchmarkModelDecrypt(b *testing.B) {
	fixture(b)
	blob, err := tflm.Encode(fixModel)
	if err != nil {
		b.Fatal(err)
	}
	rng := omgcrypto.NewDRBG("bench-seal")
	key, _ := omgcrypto.RandomBytes(rng, omgcrypto.KeySize)
	env, err := omgcrypto.Seal(rng, key, blob, omgcrypto.ModelAAD(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := omgcrypto.Open(key, env, omgcrypto.ModelAAD(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorldSwitch measures the SMC round trip (E4; paper: ~0.3 ms).
func BenchmarkWorldSwitch(b *testing.B) {
	dev := benchDevice(b, "switch")
	dev.Monitor.Register("bench.noop", func(ctx *trustzone.SecureContext, req any) (any, error) { return nil, nil })
	c := dev.SoC.Core(1)
	c.ResetCycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Monitor.Call(c, "bench.noop", nil); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(c.Elapsed().Microseconds())/1000/float64(b.N), "sim-ms/op")
}

// BenchmarkSecureMicCapture measures the secure sensor path (E4).
func BenchmarkSecureMicCapture(b *testing.B) {
	s := benchSession(b, "miccap")
	encCore := s.App.Enclave().Core()
	encCore.ResetCycles()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Device.Speak(fixUtt)
		if _, err := s.App.CaptureOnly(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(encCore.Elapsed().Microseconds())/1000/float64(b.N), "sim-ms/op")
}

// BenchmarkPreparePhase runs the full preparation phase (E5 / Fig. 2 1–4).
func BenchmarkPreparePhase(b *testing.B) {
	fixture(b)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		dev := benchDevice(b, "prep")
		model, err := tflm.BuildRandomTinyConv(1, 7)
		if err != nil {
			b.Fatal(err)
		}
		vendor, err := core.NewVendor(omgcrypto.NewDRBG("bench-vendor-prep"), fixRoot.Public(), fixVendorID, model, 1)
		if err != nil {
			b.Fatal(err)
		}
		user, err := core.NewUser(fixRoot.Public(), vendor.Public())
		if err != nil {
			b.Fatal(err)
		}
		s := core.NewSession(dev, vendor, user, omgcrypto.NewDRBG("bench-sess-prep"))
		b.StartTimer()
		if err := s.Prepare(vendor.Public()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInitializePhase runs phase II repeatedly against one prepared
// device (E5 / Fig. 2 steps 5–6).
func BenchmarkInitializePhase(b *testing.B) {
	s := benchSession(b, "init")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Initialize(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnclaveLifecycle measures setup+boot+teardown (E6, §III-B).
func BenchmarkEnclaveLifecycle(b *testing.B) {
	dev := benchDevice(b, "lifecycle")
	fixture(b)
	vendorPub := fixVendorID.Public()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app, err := core.LaunchEnclave(dev, vendorPub, omgcrypto.NewDRBG("bench-lc"))
		if err != nil {
			b.Fatal(err)
		}
		if err := app.Teardown(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHEInference is the E7 HE baseline at a reduced key size (the
// harness projects to 2048 bits; modexp scales ~cubically).
func BenchmarkHEInference(b *testing.B) {
	fixture(b)
	spec, err := intnet.FromModel(fixModel)
	if err != nil {
		b.Fatal(err)
	}
	sk, err := he.GenerateKey(omgcrypto.NewDRBG("bench-paillier"), 256)
	if err != nil {
		b.Fatal(err)
	}
	eng, err := he.NewEngine(sk, spec, omgcrypto.NewDRBG("bench-he"))
	if err != nil {
		b.Fatal(err)
	}
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		b.Fatal(err)
	}
	features := fe.Extract(fixUtt)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Infer(features); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMPCInference is the E7 2PC baseline (full tiny_conv).
func BenchmarkMPCInference(b *testing.B) {
	fixture(b)
	spec, err := intnet.FromModel(fixModel)
	if err != nil {
		b.Fatal(err)
	}
	proto, err := mpc.NewProtocol(spec, 11)
	if err != nil {
		b.Fatal(err)
	}
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		b.Fatal(err)
	}
	features := fe.Extract(fixUtt)
	var wan float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := proto.Infer(features)
		if err != nil {
			b.Fatal(err)
		}
		wan = float64(rep.WANTime.Milliseconds())
	}
	b.ReportMetric(wan, "wan-ms/op")
}

// BenchmarkPrimeProbe measures one prime+probe trial round (E8).
func BenchmarkPrimeProbe(b *testing.B) {
	for _, cfg := range []struct {
		name    string
		exclude bool
	}{{"unprotected", false}, {"partitioned", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := harness.PrimeProbeTrials(10, cfg.exclude); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelScaling is E10: inference vs model width.
func BenchmarkModelScaling(b *testing.B) {
	for _, mul := range []int{1, 2, 4, 8} {
		b.Run(sizeName(mul), func(b *testing.B) {
			model, err := tflm.BuildRandomTinyConv(mul, int64(mul))
			if err != nil {
				b.Fatal(err)
			}
			ip, err := tflm.NewInterpreter(model)
			if err != nil {
				b.Fatal(err)
			}
			for i := range ip.Input(0).I8 {
				ip.Input(0).I8[i] = int8(i % 251)
			}
			simMS := float64(tflm.InferenceCycles(model)) / 2.4e9 * 1e3
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ip.Invoke(); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(simMS, "sim-ms/op")
		})
	}
}

func sizeName(mul int) string {
	return map[int]string{1: "1x", 2: "2x", 4: "4x", 8: "8x"}[mul]
}

// BenchmarkFFTFixed512 measures the frontend's core primitive.
func BenchmarkFFTFixed512(b *testing.B) {
	re := make([]int32, 512)
	im := make([]int32, 512)
	for i := range re {
		re[i] = int32((i*2654435761 + 123) % 32768)
	}
	work := make([]int32, 512)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(work, re)
		for j := range im {
			im[j] = 0
		}
		if err := dsp.FFTFixed(work, im); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendExtract measures full fingerprint extraction through the
// zero-alloc ExtractInto path (Extract itself adds only the result slice).
func BenchmarkFrontendExtract(b *testing.B) {
	fixture(b)
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		b.Fatal(err)
	}
	dst := make([]uint8, fe.Config().FingerprintLen())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fe.ExtractInto(dst, fixUtt)
	}
}

// BenchmarkInterpreterInvoke measures the raw tiny_conv int8 inference.
func BenchmarkInterpreterInvoke(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	ip, err := tflm.NewInterpreter(model)
	if err != nil {
		b.Fatal(err)
	}
	for i := range ip.Input(0).I8 {
		ip.Input(0).I8[i] = int8(i % 251)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ip.Invoke(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInvokeBatch measures the planned multi-utterance interpreter
// path: B utterances stacked into one taller im2col/GEMM per node. The
// utt/s metric compares directly against BenchmarkInterpreterInvoke's
// inverse ns/op (batch=1 measures the planned path's own overhead; the
// ISSUE acceptance bar is ≥1.15× serial throughput at batch ≥ 8).
func BenchmarkInvokeBatch(b *testing.B) {
	fixture(b)
	for _, batch := range []int{1, 8, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			model, err := tflm.BuildRandomTinyConv(1, 7)
			if err != nil {
				b.Fatal(err)
			}
			ip, err := tflm.NewInterpreter(model)
			if err != nil {
				b.Fatal(err)
			}
			if err := ip.PlanBatch(batch); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < batch; j++ {
				row := ip.BatchInput(j)
				for i := range row {
					row[i] = int8((i + 31*j) % 251)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ip.InvokeBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
		})
	}
}

// BenchmarkGEMMMicroKernel isolates the SWAR int8 GEMM inner kernel on the
// hot shapes of the paper model — the conv patch GEMM (550 rows × 8 filters
// × depth 80), the serial FC sweep (1 × 12 × 4400), and the batched FC
// sweep (16 × 12 × 4400, the shape cache-blocked InvokeBatch feeds the
// kernel) — reporting MAC throughput. This is the micro-benchmark to rerun
// before retuning the kernel (ROADMAP rule), and the gated baseline any
// lane-packing experiment (e.g. the rejected 4-depth/16-bit layout, see
// swar.go) must beat. The shapes also stress the deep-K single-row sweep
// and the panel-quad requantization tail.
func BenchmarkGEMMMicroKernel(b *testing.B) {
	for _, shape := range []struct {
		name    string
		m, n, k int
	}{
		{"conv_550x8x80", 550, 8, 80},
		{"fc_1x12x4400", 1, 12, 4400},
		{"fc_16x12x4400", 16, 12, 4400},
	} {
		b.Run(shape.name, func(b *testing.B) {
			gb, err := tflm.NewGEMMBench(shape.m, shape.n, shape.k, 42)
			if err != nil {
				b.Fatal(err)
			}
			gb.Run()
			if err := gb.Check(); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				gb.Run()
			}
			b.StopTimer()
			b.ReportMetric(float64(gb.MACs())*float64(b.N)/1e6/b.Elapsed().Seconds(), "mmac/s")
		})
	}
}

// BenchmarkInvokeBatchParallel measures the multi-core InvokeBatch fan-out:
// the interpreter plans min(GOMAXPROCS, batch) shard contexts and fans
// contiguous utterance spans across its persistent worker group. Run with
// `-cpu 1,2,4` for the scaling sweep (the shards metric records the planned
// parallelism per sub-run); at -cpu 1 the plan degenerates to the serial
// loop, so the delta over BenchmarkInvokeBatch is pure fan-out overhead.
func BenchmarkInvokeBatchParallel(b *testing.B) {
	fixture(b)
	for _, batch := range []int{8, 16} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			model, err := tflm.BuildRandomTinyConv(1, 7)
			if err != nil {
				b.Fatal(err)
			}
			ip, err := tflm.NewInterpreter(model)
			if err != nil {
				b.Fatal(err)
			}
			if err := ip.PlanBatchParallel(batch, 0); err != nil {
				b.Fatal(err)
			}
			defer ip.ReleaseBatch()
			for j := 0; j < batch; j++ {
				row := ip.BatchInput(j)
				for i := range row {
					row[i] = int8((i + 31*j) % 251)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := ip.InvokeBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
			b.ReportMetric(float64(ip.BatchParallelism()), "shards")
		})
	}
}

// BenchmarkBatchInference measures the concurrent serving path: a batch of
// utterances fanned across core.Pipeline worker pools of increasing size.
// The per-op time is for the whole batch; the utt/s metric is the
// throughput figure, which should scale near-linearly with workers.
func BenchmarkBatchInference(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	const batch = 64
	utts := make([][]int16, batch)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			p, err := core.NewPipeline(model, core.PipelineConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := p.RunBatch(utts)
				for _, r := range res {
					if r.Err != nil {
						b.Fatal(r.Err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
		})
	}
}

// BenchmarkStreamingExtract contrasts the steady-state incremental frontend
// against full fingerprint recomputation, per 20 ms hop: "full" runs
// ExtractInto over the whole one-second window for every hop, "streamer"
// pays one FFT plus ring rotation. The ISSUE acceptance bar is ≥10× and
// 0 allocs/op for the streamer.
func BenchmarkStreamingExtract(b *testing.B) {
	fixture(b)
	cfg := dsp.DefaultFrontend()
	utt := cfg.UtteranceSamples()
	hop := cfg.StrideSamples
	signal := make([]int16, 4*utt)
	for i := 0; i < len(signal); i += len(fixUtt) {
		copy(signal[i:], fixUtt)
	}
	b.Run("full", func(b *testing.B) {
		fe, err := dsp.NewFrontend(cfg)
		if err != nil {
			b.Fatal(err)
		}
		dst := make([]uint8, cfg.FingerprintLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (i % ((len(signal) - utt) / hop)) * hop
			fe.ExtractInto(dst, signal[off:off+utt])
		}
	})
	b.Run("streamer", func(b *testing.B) {
		fe, err := dsp.NewFrontend(cfg)
		if err != nil {
			b.Fatal(err)
		}
		st := dsp.NewStreamer(fe)
		st.Push(signal[:utt])
		dst := make([]uint8, cfg.FingerprintLen())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := utt + (i%((len(signal)-utt)/hop))*hop
			st.Push(signal[off : off+hop])
			st.Fingerprint(dst)
		}
	})
}

// BenchmarkServerThroughput measures the persistent submission queue at the
// same batch/worker points as BenchmarkBatchInference — the acceptance bar
// is parity or better, since RunBatch is now a wrapper over this path.
func BenchmarkServerThroughput(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	const batch = 64
	utts := make([][]int16, batch)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			srv, err := core.NewServer(model, core.ServerConfig{Workers: workers})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			tickets := make([]*core.Pending, batch)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j, u := range utts {
					p, err := srv.Submit(u)
					if err != nil {
						b.Fatal(err)
					}
					tickets[j] = p
				}
				for _, p := range tickets {
					if r := p.Wait(); r.Err != nil {
						b.Fatal(r.Err)
					}
					p.Release()
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
		})
	}
}

// BenchmarkNetServerThroughput measures the network serving edge end to
// end: N concurrent client connections over loopback TCP, each submitting
// one-shot utterances against one shared core.Server behind the netfront
// wire protocol. Compare against BenchmarkServerThroughput (the same pool
// without the wire) for the protocol's fixed per-utterance overhead —
// framing, two socket hops, and decode — which stream batching amortizes
// but one-shots pay in full.
func BenchmarkNetServerThroughput(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, 16)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 4, Queue: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	defer fe.Close()
	for _, conns := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("conns=%d", conns), func(b *testing.B) {
			clients := make([]*client.Client, conns)
			for i := range clients {
				c, err := client.Dial("tcp", l.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				clients[i] = c
				defer c.Close()
			}
			// Warm every connection's buffers and the server pools.
			for _, c := range clients {
				if _, err := c.Classify(utts[0]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			var wg sync.WaitGroup
			errs := make(chan error, conns)
			for ci, c := range clients {
				n := b.N / conns
				if ci < b.N%conns {
					n++
				}
				wg.Add(1)
				go func(c *client.Client, n, ci int) {
					defer wg.Done()
					for i := 0; i < n; i++ {
						label, err := c.Classify(utts[(ci+i)%len(utts)])
						for errors.Is(err, client.ErrBusy) {
							label, err = c.Classify(utts[(ci+i)%len(utts)])
						}
						if err != nil {
							errs <- err
							return
						}
						if label < 0 {
							errs <- fmt.Errorf("conn %d: label %d", ci, label)
							return
						}
					}
				}(c, n, ci)
			}
			wg.Wait()
			b.StopTimer()
			select {
			case err := <-errs:
				b.Fatal(err)
			default:
			}
			b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "utt/s")
		})
	}
}

// BenchmarkRegistryThroughput measures the multi-tenant registry tier at 1,
// 2, and 4 co-resident models: per iteration, a 64-utterance wave spread
// round-robin across the models flows through DRR admission into each
// model's shard set. Compare models=1 against BenchmarkServerThroughput
// workers=4 for the registry's scheduling overhead (one dispatcher hop and
// a tenant queue per submission); the multi-model points show isolation —
// adding models must not collapse per-model throughput beyond the shared
// CPU budget.
func BenchmarkRegistryThroughput(b *testing.B) {
	fixture(b)
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	const batch = 64
	utts := make([][]int16, batch)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	for _, nm := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("models=%d", nm), func(b *testing.B) {
			models := map[string]core.ModelConfig{}
			names := make([]string, nm)
			for i := 0; i < nm; i++ {
				m, err := tflm.BuildRandomTinyConv(1, int64(7+i))
				if err != nil {
					b.Fatal(err)
				}
				names[i] = fmt.Sprintf("m%d", i)
				models[names[i]] = core.ModelConfig{Model: m, Version: 1}
			}
			reg, err := core.NewRegistry(models, core.RegistryConfig{
				Server:        core.ServerConfig{Workers: 4, Queue: 64},
				DefaultTenant: core.TenantConfig{MaxQueue: 4 * batch},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer reg.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var wg sync.WaitGroup
				wg.Add(batch)
				for j := 0; j < batch; j++ {
					if err := reg.Submit(names[j%nm], "", utts[j], time.Time{}, func(core.Result) {
						wg.Done()
					}); err != nil {
						b.Fatal(err)
					}
				}
				wg.Wait()
			}
			b.StopTimer()
			b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
		})
	}
}

// BenchmarkRegistrySwapUnderLoad measures the hot-swap cutover itself: per
// op is one Registry.Swap — signature verify, envelope decrypt, new shard
// set spin-up, admitted-work flush barrier, old set drain — while four
// submitters keep constant one-shot load on the model. Package signing is
// excluded from the timer (vendor-side cost). The benchmark doubles as a
// zero-drop check: every load submission's callback must fire, so a swap
// that dropped work would deadlock a submitter and stall the run.
func BenchmarkRegistrySwapUnderLoad(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utts := make([][]int16, 8)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	signer, err := core.NewSwapSigner(nil)
	if err != nil {
		b.Fatal(err)
	}
	reg, err := core.NewRegistry(map[string]core.ModelConfig{
		"kws": {Model: model, Version: 1, VendorPub: signer.VendorPub(), Key: signer.Key()},
	}, core.RegistryConfig{
		Shards:        2,
		Server:        core.ServerConfig{Workers: 2, Queue: 16},
		DefaultTenant: core.TenantConfig{MaxQueue: 1024},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer reg.Close()

	stop := make(chan struct{})
	var loadWG sync.WaitGroup
	var served atomic.Uint64
	for g := 0; g < 4; g++ {
		loadWG.Add(1)
		go func(g int) {
			defer loadWG.Done()
			done := make(chan struct{}, 1)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := reg.Submit("kws", "", utts[(g+i)%len(utts)], time.Time{}, func(core.Result) {
					done <- struct{}{}
				}); err != nil {
					continue // tenant cap hit: back off by retrying
				}
				<-done
				served.Add(1)
			}
		}(g)
	}

	// Let the load reach steady state before timing: the zero-drop check
	// below needs at least one served utterance even at -benchtime 1x.
	for start := time.Now(); served.Load() == 0; {
		if time.Since(start) > 10*time.Second {
			b.Fatal("background load never started")
		}
		time.Sleep(time.Millisecond)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		pkg, err := signer.Package("kws", uint64(i+2), model)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := reg.Swap("kws", pkg); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	loadWG.Wait()
	if served.Load() == 0 {
		b.Fatal("background load served nothing — swaps starved the model")
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "swap/s")
	b.ReportMetric(float64(served.Load())/float64(b.N), "utt/swap")
}

// BenchmarkRegistryDegraded measures serving throughput at degraded
// capacity: a 4-shard registry with shard 0's circuit breaker tripped open
// (an hour-long cooldown keeps it open and the supervisor idle for the
// whole run), so every wave is carried by the 3 survivors. Per op is one
// 64-utterance wave through Registry.Submit. Gated against
// BENCH_BASELINE.json: a regression here means the open-shard skip path got
// expensive or broken shards leak back into rotation.
func BenchmarkRegistryDegraded(b *testing.B) {
	fixture(b)
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	const batch = 64
	utts := make([][]int16, batch)
	for i := range utts {
		utts[i] = gen.Example(i%speechcmd.NumLabels, i/speechcmd.NumLabels, 0).Samples
	}
	b.Run("shards=4,dead=1", func(b *testing.B) {
		model, err := tflm.BuildRandomTinyConv(1, 7)
		if err != nil {
			b.Fatal(err)
		}
		reg, err := core.NewRegistry(map[string]core.ModelConfig{
			"kws": {Model: model, Version: 1},
		}, core.RegistryConfig{
			Shards:        4,
			Server:        core.ServerConfig{Workers: 2, Queue: 64},
			DefaultTenant: core.TenantConfig{MaxQueue: 4 * batch},
			Breaker: core.BreakerConfig{
				Threshold:    1,
				Cooldown:     time.Hour, // stays open for the whole run
				CooldownMax:  time.Hour,
				RebuildAfter: 1 << 30, // supervisor never rebuilds it
			},
		})
		if err != nil {
			b.Fatal(err)
		}
		defer reg.Close()

		// Kill shard 0: arm a panic on it and submit until the breaker
		// trips (rotation decides which shard serves each submission, so
		// arm before every probe).
		tripped := func() bool {
			for _, mh := range reg.Health() {
				for _, sh := range mh.Shards {
					if sh.Shard == 0 && sh.State == core.BreakerOpen {
						return true
					}
				}
			}
			return false
		}
		for i := 0; i < 1000 && !tripped(); i++ {
			reg.InjectPanicShard("kws", 0)
			done := make(chan struct{})
			if err := reg.Submit("kws", "", utts[i%batch], time.Time{}, func(core.Result) {
				close(done)
			}); err != nil {
				b.Fatal(err)
			}
			<-done
		}
		if !tripped() {
			b.Fatal("shard 0 breaker never tripped")
		}

		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var wg sync.WaitGroup
			wg.Add(batch)
			for j := 0; j < batch; j++ {
				if err := reg.Submit("kws", "", utts[j], time.Time{}, func(core.Result) {
					wg.Done()
				}); err != nil {
					b.Fatal(err)
				}
			}
			wg.Wait()
		}
		b.StopTimer()
		b.ReportMetric(float64(batch*b.N)/b.Elapsed().Seconds(), "utt/s")
	})
}

// BenchmarkStreamingServer measures steady-state streamed hops through the
// persistent queue: per-op is one 20 ms hop (1 FFT + one inference).
func BenchmarkStreamingServer(b *testing.B) {
	fixture(b)
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		b.Fatal(err)
	}
	cfg := dsp.DefaultFrontend()
	utt := cfg.UtteranceSamples()
	hop := cfg.StrideSamples
	signal := make([]int16, 4*utt)
	for i := 0; i < len(signal); i += len(fixUtt) {
		copy(signal[i:], fixUtt)
	}
	srv, err := core.NewServer(model, core.ServerConfig{Workers: 4})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	stream, err := srv.OpenStream()
	if err != nil {
		b.Fatal(err)
	}
	if _, err := srv.SubmitStream(stream, signal[:utt]); err != nil {
		b.Fatal(err)
	}
	var tail []*core.Pending
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := utt + (i%((len(signal)-utt)/hop))*hop
		tickets, err := srv.SubmitStream(stream, signal[off:off+hop])
		if err != nil {
			b.Fatal(err)
		}
		tail = append(tail, tickets...)
		for len(tail) > srv.Workers() {
			if r := tail[0].Wait(); r.Err != nil {
				b.Fatal(r.Err)
			}
			tail = tail[1:]
		}
	}
	for _, p := range tail {
		if r := p.Wait(); r.Err != nil {
			b.Fatal(r.Err)
		}
	}
}

// BenchmarkQueryBatch compares the enclave operation phase one query at a
// time against QueryBatch amortizing a whole batch over a single enclave
// Run (E12's third tier; sim-ms reports simulated enclave-core time).
func BenchmarkQueryBatch(b *testing.B) {
	const batch = 16
	b.Run("serial", func(b *testing.B) {
		s := benchSession(b, "qb-serial")
		encCore := s.App.Enclave().Core()
		encCore.ResetCycles()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for q := 0; q < batch; q++ {
				s.Device.Speak(fixUtt)
			}
			for q := 0; q < batch; q++ {
				if _, err := s.Query(); err != nil {
					b.Fatal(err)
				}
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(encCore.Elapsed().Microseconds())/1000/float64(b.N*batch), "sim-ms/query")
	})
	b.Run("batched", func(b *testing.B) {
		s := benchSession(b, "qb-batched")
		encCore := s.App.Enclave().Core()
		encCore.ResetCycles()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for q := 0; q < batch; q++ {
				s.Device.Speak(fixUtt)
			}
			if _, err := s.App.QueryBatch(batch); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		b.ReportMetric(float64(encCore.Elapsed().Microseconds())/1000/float64(b.N*batch), "sim-ms/query")
	})
}

// BenchmarkTrainEpoch measures one SGD epoch of the float tiny_conv on a
// small corpus (the §VI training pipeline).
func BenchmarkTrainEpoch(b *testing.B) {
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	fe, err := dsp.NewFrontend(dsp.DefaultFrontend())
	if err != nil {
		b.Fatal(err)
	}
	var samples []train.Sample
	for label := 0; label < speechcmd.NumLabels; label++ {
		for take := 0; take < 2; take++ {
			ex := gen.Example(label, 1, take)
			samples = append(samples, train.Sample{Features: fe.Extract(ex.Samples), Label: ex.Label})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := train.NewTinyConv(train.PaperTinyConv(), newRand(int64(i)))
		cfg := train.TrainConfig{Epochs: 1, BatchSize: 8, LR: 0.02, Momentum: 0.9, Seed: int64(i)}
		if err := train.Fit(m, samples, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// BenchmarkServedTailLatency is the SLO gate (ISSUE 10): open-loop Poisson
// runs from internal/loadgen against a live front end over loopback TCP,
// with the one-shot p99 reported as the gated custom metric. Unlike the
// throughput benchmarks above — closed loops that measure capacity — this
// fixes the offered rate well below saturation (~25% utilisation on the
// 1-CPU CI box) so the number it guards is queueing-plus-service tail
// latency under realistic load, the quantity the paper's on-device budget
// constrains.
//
// A p99 over one short run is a single order statistic: one CPU-steal
// stall on a shared host inflates every queued arrival and swings it by an
// order of magnitude. Each iteration therefore runs sloSubRuns independent
// sub-runs (distinct seeds) and the gated metric is the MEDIAN sub-run
// p99, which one stall event cannot move. ns/op is sub-runs × arrivals ×
// the inter-arrival period by construction and carries no signal; the
// gate polices p99-ms/op. The experiment size is fixed per iteration (so
// the metric is comparable across -benchtime settings); -benchtime 1x
// runs it exactly once, in about six seconds.
func BenchmarkServedTailLatency(b *testing.B) {
	fixture(b)
	srv, err := core.NewServer(fixModel, core.ServerConfig{Workers: 2, Queue: 64})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	defer fe.Close()

	target, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:   "tcp",
		Addr:      l.Addr().String(),
		Conns:     4,
		Utterance: fixUtt,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer target.Close()
	// Warm the connections and server pools outside the measured window.
	if err := target.Do(loadgen.ClassOneShot, "", 0); err != nil {
		b.Fatal(err)
	}

	const (
		sloRate     = 500  // arrivals/s: ~25% of loopback one-shot capacity
		sloArrivals = 1000 // per sub-run: p99 is the 10th-worst sample
		sloSubRuns  = 3
	)
	var p99s []time.Duration
	merged := loadgen.NewHistogram()
	var offered, busy uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := 0; r < sloSubRuns; r++ {
			rep, err := loadgen.Run(loadgen.Config{
				Rate:        sloRate,
				MaxArrivals: sloArrivals,
				Seed:        int64(1 + i*sloSubRuns + r),
			}, target)
			if err != nil {
				b.Fatal(err)
			}
			if rep.Errors != 0 || rep.Inflight != 0 {
				b.Fatalf("run not clean: %v (%v)", rep, rep.ErrorSamples)
			}
			lat := rep.Latency(loadgen.ClassOneShot)
			p99s = append(p99s, lat.Quantile(0.99))
			merged.Merge(lat)
			offered += rep.Offered
			busy += rep.Busy
		}
	}
	b.StopTimer()
	sort.Slice(p99s, func(i, j int) bool { return p99s[i] < p99s[j] })
	b.ReportMetric(float64(p99s[len(p99s)/2])/1e6, "p99-ms/op")
	b.ReportMetric(float64(merged.Quantile(0.5))/1e6, "p50-ms")
	b.ReportMetric(float64(merged.Quantile(0.999))/1e6, "p99.9-ms")
	b.ReportMetric(float64(busy)/float64(offered), "busy-rate")
}
