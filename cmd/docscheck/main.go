// Command docscheck enforces the repository's godoc contract: every
// exported identifier in the audited packages must carry a doc comment
// stating its contract (`make docs-check` wires it into CI). The rules
// follow idiomatic godoc rather than raw AST pedantry:
//
//   - exported functions, methods (on exported receivers), types and
//     single-spec const/var declarations need their own comment;
//   - a const/var group with a declaration-level comment covers its
//     members (the "// Frame types." style);
//   - exported fields of exported structs and exported interface methods
//     need a comment attached to the field/method or sharing its line.
//
// Usage: docscheck [package dirs]; default is the audited engine surface
// (internal/core, internal/tflm, internal/dsp, internal/netfront). Exits
// non-zero listing every violation, so a PR cannot silently add
// undocumented API.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"strings"
)

// defaultDirs is the audited API surface: the engine packages ISSUE 5's
// godoc audit covers, plus the serving edge added with it.
var defaultDirs = []string{
	"internal/core",
	"internal/tflm",
	"internal/dsp",
	"internal/netfront",
	"internal/netfront/client",
	"internal/netfront/faultconn",
	"internal/loadgen",
}

func main() {
	flag.Parse()
	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = defaultDirs
	}
	violations := 0
	for _, dir := range dirs {
		v, err := checkDir(dir)
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", dir, err)
			os.Exit(2)
		}
		violations += v
	}
	if violations > 0 {
		fmt.Fprintf(os.Stderr, "docscheck: %d undocumented exported identifiers\n", violations)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and reports every
// undocumented exported identifier to stderr, returning the count.
func checkDir(dir string) (int, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return 0, err
	}
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		p := fset.Position(pos)
		fmt.Fprintf(os.Stderr, "%s:%d: %s %s has no doc comment\n", p.Filename, p.Line, kind, name)
		bad++
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if !d.Name.IsExported() || !receiverExported(d) {
						continue
					}
					if d.Doc == nil {
						kind := "func"
						if d.Recv != nil {
							kind = "method"
						}
						report(d.Pos(), kind, d.Name.Name)
					}
				case *ast.GenDecl:
					checkGenDecl(d, report)
				}
			}
		}
	}
	return bad, nil
}

// receiverExported reports whether a method's receiver type is exported
// (methods on unexported types are not public API even when capitalized).
func receiverExported(d *ast.FuncDecl) bool {
	if d.Recv == nil || len(d.Recv.List) == 0 {
		return true
	}
	t := d.Recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver T[P]
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.IsExported()
		default:
			return true
		}
	}
}

// checkGenDecl audits a type/const/var declaration. A group-level doc
// comment covers all specs of a const/var block; types always need their
// own comment, and exported struct fields / interface methods are checked
// recursively.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string, string)) {
	groupDoc := d.Doc != nil
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if !groupDoc && s.Doc == nil {
				report(s.Pos(), "type", s.Name.Name)
			}
			switch t := s.Type.(type) {
			case *ast.StructType:
				checkFields(s.Name.Name, t.Fields, "field", report)
			case *ast.InterfaceType:
				checkFields(s.Name.Name, t.Methods, "interface method", report)
			}
		case *ast.ValueSpec:
			if s.Doc != nil || groupDoc || s.Comment != nil {
				continue
			}
			kind := "var"
			if d.Tok == token.CONST {
				kind = "const"
			}
			for _, name := range s.Names {
				if name.IsExported() {
					report(name.Pos(), kind, name.Name)
				}
			}
		}
	}
}

// checkFields audits a struct field list or interface method set: an
// exported member needs a doc comment above it or a line comment on it.
func checkFields(typeName string, fields *ast.FieldList, kind string, report func(token.Pos, string, string)) {
	if fields == nil {
		return
	}
	for _, f := range fields.List {
		if f.Doc != nil || f.Comment != nil {
			continue
		}
		if len(f.Names) == 0 {
			continue // embedded: documented by the embedded type
		}
		for _, name := range f.Names {
			if name.IsExported() {
				report(name.Pos(), kind, typeName+"."+name.Name)
			}
		}
	}
}
