// Command omg-train reproduces the paper's model pipeline (§VI): it
// synthesizes the substitute Speech Commands corpus, trains the float
// tiny_conv with SGD, quantizes it to an int8 "micro" model, evaluates all
// stages, and writes the OMGM model file a vendor would provision.
//
// Usage:
//
//	omg-train                         train with the calibrated defaults
//	omg-train -speakers 96 -epochs 20 a larger run
//	omg-train -o tiny_conv.omgm       choose the output path
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/audio"
	"repro/internal/dsp"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
	"repro/internal/train"
)

func main() {
	speakers := flag.Int("speakers", 48, "synthetic speakers in the corpus")
	takes := flag.Int("takes", 2, "recordings per speaker per class")
	epochs := flag.Int("epochs", 12, "training epochs")
	seed := flag.Int64("seed", 1, "training seed")
	out := flag.String("o", "tiny_conv.omgm", "output model path")
	exportWAV := flag.String("export-wav", "", "directory to export one WAV per class (inspectable corpus samples)")
	flag.Parse()

	cfg := train.DefaultPipeline()
	cfg.Spec = speechcmd.DatasetSpec{Speakers: *speakers, TakesPerLabel: *takes}
	cfg.Train.Epochs = *epochs
	cfg.Train.Seed = *seed
	cfg.Train.Progress = func(epoch int, loss, valAcc float64) {
		fmt.Printf("epoch %2d  train-loss %.3f  val-acc %.1f%%\n", epoch, loss, valAcc*100)
	}

	fmt.Printf("corpus: %d speakers × %d classes × %d takes (noise %.2f, variation %.1f)\n",
		*speakers, speechcmd.NumLabels, *takes, cfg.Corpus.NoiseRMS, cfg.Corpus.SpeakerVariation)
	res, err := train.RunPipeline(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omg-train:", err)
		os.Exit(1)
	}

	fmt.Printf("\nfloat test accuracy:      %.1f%% (%d test utterances)\n",
		res.FloatTestAcc*100, len(res.TestSamples))
	fmt.Printf("quantized test accuracy:  %.1f%%\n", res.QuantTestAcc*100)
	fmt.Printf("float/int8 agreement:     %.1f%%\n", res.Agreement*100)

	// The paper's 100-utterance evaluation subset.
	gen := speechcmd.NewGenerator(cfg.Corpus)
	fe, err := dsp.NewFrontend(cfg.Frontend)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omg-train:", err)
		os.Exit(1)
	}
	subset := train.Featurize(gen.PaperTestSubset(), fe)
	acc, err := train.EvaluateQuantized(res.Model, subset)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omg-train:", err)
		os.Exit(1)
	}
	fmt.Printf("paper-subset accuracy:    %.0f%% (paper reports 75%%)\n", acc*100)

	blob, err := tflm.Encode(res.Model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "omg-train:", err)
		os.Exit(1)
	}
	if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "omg-train:", err)
		os.Exit(1)
	}
	fmt.Printf("\nwrote %s (%.1f kB, %d weight bytes; paper: ~49 kB)\n",
		*out, float64(len(blob))/1000, res.Model.WeightBytes())

	if *exportWAV != "" {
		if err := exportSamples(gen, *exportWAV); err != nil {
			fmt.Fprintln(os.Stderr, "omg-train:", err)
			os.Exit(1)
		}
		fmt.Printf("exported %d sample WAVs to %s\n", speechcmd.NumLabels, *exportWAV)
	}
}

// exportSamples writes one representative utterance per class so the
// synthetic corpus can be listened to with any audio player.
func exportSamples(gen *speechcmd.Generator, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for label := 0; label < speechcmd.NumLabels; label++ {
		ex := gen.Example(label, 0, 0)
		blob := audio.EncodeWAV(ex.Samples, gen.Config().SampleRate)
		name := filepath.Join(dir, fmt.Sprintf("%02d_%s.wav", label, speechcmd.LabelName(label)))
		if err := os.WriteFile(name, blob, 0o644); err != nil {
			return err
		}
	}
	return nil
}
