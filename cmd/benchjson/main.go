// Command benchjson converts `go test -bench -benchmem` output to JSON and
// diffs two saved files, so the repository's performance trajectory is
// tracked PR over PR (make bench-save / make bench-cmp).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | benchjson -save BENCH_abc123.json
//	benchjson -cmp BENCH_old.json BENCH_new.json
//
// The diff lists every benchmark present in both files with the ns/op
// delta; changes beyond the tolerance (-tol, default ±10%) are flagged.
// Custom ReportMetric units ride along as indented sub-rows: units ending
// in "/op" (sim-ms/op, ...) regress upward, units containing "/s" (utt/s,
// Gmac/s, MB/s, ...) regress downward, and unitless counts (shards, ...)
// are informational only. The allocator metrics B/op and allocs/op are
// deliberately omitted — they are tier-1 test material, not trajectory.
// Benchmarks appearing on only one side are reported as added/removed.
// Plain -cmp exits 0 regardless of deltas — it informs, the reader judges.
// With -gate REGEXP (the `make bench-gate` mode) the comparison instead
// exits 1 when any benchmark (or custom metric of a benchmark) matching the
// pattern is slower than the baseline by more than the tolerance, turning
// the committed BENCH_*.json snapshot into a regression gate for the hot
// paths.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Name    string  `json:"name"`
	Iters   int64   `json:"iters"`
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "value unit" pair of the line: B/op,
	// allocs/op, and custom ReportMetric units (utt/s, sim-ms/op, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// File is the saved benchmark snapshot.
type File struct {
	// Context lines (goos/goarch/pkg/cpu) from the bench run header.
	Context    map[string]string `json:"context,omitempty"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// Parse reads `go test -bench` text output.
func Parse(r io.Reader) (*File, error) {
	f := &File{Context: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "" || line == "PASS" || strings.HasPrefix(line, "ok "):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			f.Context[k] = strings.TrimSpace(v)
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b := Benchmark{Name: fields[0], Iters: iters, Metrics: map[string]float64{}}
		for i := 2; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %q: bad value %q", b.Name, fields[i])
			}
			if fields[i+1] == "ns/op" {
				b.NsPerOp = val
			} else {
				b.Metrics[fields[i+1]] = val
			}
		}
		f.Benchmarks = append(f.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(f.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}
	return f, nil
}

func load(path string) (*File, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return &f, nil
}

// Compare renders the old→new delta report, flagging moves beyond ±tol
// percent. When gate is non-nil it returns the names of gated benchmarks
// (those matching the pattern) that regressed beyond the tolerance.
func Compare(w io.Writer, oldF, newF *File, tol float64, gate *regexp.Regexp) []string {
	oldBy := map[string]Benchmark{}
	for _, b := range oldF.Benchmarks {
		oldBy[b.Name] = b
	}
	newBy := map[string]Benchmark{}
	var names []string
	for _, b := range newF.Benchmarks {
		newBy[b.Name] = b
		names = append(names, b.Name)
	}
	sort.Strings(names)
	var regressed []string
	fmt.Fprintf(w, "%-55s %14s %14s %9s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		nb := newBy[name]
		ob, ok := oldBy[name]
		if !ok {
			fmt.Fprintf(w, "%-55s %14s %14.0f %9s\n", name, "-", nb.NsPerOp, "added")
			continue
		}
		delta := 0.0
		if ob.NsPerOp > 0 {
			delta = (nb.NsPerOp - ob.NsPerOp) / ob.NsPerOp * 100
		}
		flag := ""
		if delta <= -tol {
			flag = "  (faster)"
		} else if delta >= tol {
			flag = "  (SLOWER)"
			if gate != nil && gate.MatchString(name) {
				regressed = append(regressed, name)
			}
		}
		fmt.Fprintf(w, "%-55s %14.0f %14.0f %+8.1f%%%s\n", name, ob.NsPerOp, nb.NsPerOp, delta, flag)
		// Custom metric sub-rows (sim-ms/op, utt/s, Gmac/s, ...): same
		// tolerance, direction inferred from the unit.
		for _, unit := range metricUnits(ob, nb) {
			ov, nv := ob.Metrics[unit], nb.Metrics[unit]
			mdelta := 0.0
			if ov != 0 {
				mdelta = (nv - ov) / ov * 100
			}
			worse, better := metricDirection(unit, mdelta, tol)
			mflag := ""
			if better {
				mflag = "  (faster)"
			} else if worse {
				mflag = "  (SLOWER)"
				if gate != nil && gate.MatchString(name) {
					regressed = append(regressed, name+" ["+unit+"]")
				}
			}
			fmt.Fprintf(w, "%-55s %14.4g %14.4g %+8.1f%%%s\n", "  > "+unit, ov, nv, mdelta, mflag)
		}
	}
	for _, b := range oldF.Benchmarks {
		if _, ok := newBy[b.Name]; !ok {
			fmt.Fprintf(w, "%-55s %14.0f %14s %9s\n", b.Name, b.NsPerOp, "-", "removed")
			// A gated benchmark that vanished is a gate failure, not a
			// pass: silently dropping the hot-path measurement would
			// otherwise disarm the gate.
			if gate != nil && gate.MatchString(b.Name) {
				regressed = append(regressed, b.Name+" (removed)")
			}
		}
	}
	return regressed
}

// metricUnits returns the custom metric units shared by both sides of a
// comparison, sorted, minus the allocator metrics (B/op, allocs/op — memory
// behavior is pinned by tests, not by the perf trajectory).
func metricUnits(ob, nb Benchmark) []string {
	var units []string
	for unit := range nb.Metrics {
		if unit == "B/op" || unit == "allocs/op" {
			continue
		}
		if _, ok := ob.Metrics[unit]; ok {
			units = append(units, unit)
		}
	}
	sort.Strings(units)
	return units
}

// metricDirection classifies a metric delta: "/op" units are costs (up is
// worse), "/s" units are rates (down is worse), anything else — unitless
// counts like shards — is informational and never flagged.
func metricDirection(unit string, delta, tol float64) (worse, better bool) {
	switch {
	case strings.HasSuffix(unit, "/op"):
		return delta >= tol, delta <= -tol
	case strings.Contains(unit, "/s"):
		return delta <= -tol, delta >= tol
	default:
		return false, false
	}
}

func main() {
	save := flag.String("save", "", "parse bench output on stdin and write JSON to this file")
	cmp := flag.Bool("cmp", false, "compare two saved JSON files: benchjson -cmp OLD NEW")
	tol := flag.Float64("tol", 10, "percent ns/op change flagged as faster/SLOWER by -cmp")
	gate := flag.String("gate", "", "with -cmp: exit 1 if any benchmark matching this regexp is SLOWER beyond -tol")
	flag.Parse()

	switch {
	case *save != "":
		f, err := Parse(os.Stdin)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		data, err := json.MarshalIndent(f, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := os.WriteFile(*save, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(f.Benchmarks), *save)
	case *cmp:
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -cmp [-tol PCT] [-gate REGEXP] OLD.json NEW.json")
			os.Exit(2)
		}
		oldF, err := load(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		newF, err := load(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var gateRe *regexp.Regexp
		if *gate != "" {
			if gateRe, err = regexp.Compile(*gate); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson: bad -gate pattern:", err)
				os.Exit(2)
			}
		}
		regressed := Compare(os.Stdout, oldF, newF, *tol, gateRe)
		if len(regressed) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: gate FAILED, %d benchmark(s) regressed beyond %.0f%%: %s\n",
				len(regressed), *tol, strings.Join(regressed, ", "))
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "usage: benchjson -save FILE < bench-output | benchjson -cmp [-tol PCT] [-gate REGEXP] OLD NEW")
		os.Exit(2)
	}
}
