package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamingExtract/full-4         	    2016	    572534 ns/op	       0 B/op	       0 allocs/op
BenchmarkStreamingExtract/streamer-4     	   98241	     11443 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryBatch/serial-4             	      75	  16269036 ns/op	         4.082 sim-ms/query	 3382030 B/op	     105 allocs/op
BenchmarkBatchInference/workers=4-4      	     100	   9000000 ns/op	      7111 utt/s	     120 B/op	       3 allocs/op
PASS
ok  	repro	6.773s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	if f.Context["goos"] != "linux" || !strings.Contains(f.Context["cpu"], "Xeon") {
		t.Fatalf("context not captured: %v", f.Context)
	}
	full := f.Benchmarks[0]
	if full.Name != "BenchmarkStreamingExtract/full-4" || full.Iters != 2016 || full.NsPerOp != 572534 {
		t.Fatalf("first benchmark misparsed: %+v", full)
	}
	if full.Metrics["allocs/op"] != 0 || full.Metrics["B/op"] != 0 {
		t.Fatalf("benchmem metrics misparsed: %+v", full.Metrics)
	}
	qb := f.Benchmarks[2]
	if qb.Metrics["sim-ms/query"] != 4.082 {
		t.Fatalf("custom metric misparsed: %+v", qb.Metrics)
	}
	if f.Benchmarks[3].Metrics["utt/s"] != 7111 {
		t.Fatalf("throughput metric misparsed: %+v", f.Benchmarks[3].Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCompare(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 1000},
		{Name: "BenchmarkB-4", NsPerOp: 2000},
		{Name: "BenchmarkGone-4", NsPerOp: 5},
	}}
	newF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 800},  // −20%: flagged faster
		{Name: "BenchmarkB-4", NsPerOp: 2300}, // +15%: flagged slower
		{Name: "BenchmarkNew-4", NsPerOp: 7},
	}}
	var sb strings.Builder
	Compare(&sb, oldF, newF, 10, nil)
	out := sb.String()
	for _, want := range []string{"(faster)", "(SLOWER)", "added", "removed", "-20.0%", "+15.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareTolerance: the flag threshold follows -tol, so a ±15% move is
// quiet at tol=20 and flagged at tol=10.
func TestCompareTolerance(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkB-4", NsPerOp: 2000}}}
	newF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkB-4", NsPerOp: 2300}}}
	var sb strings.Builder
	Compare(&sb, oldF, newF, 20, nil)
	if strings.Contains(sb.String(), "SLOWER") {
		t.Fatalf("+15%% flagged at tol=20:\n%s", sb.String())
	}
	sb.Reset()
	Compare(&sb, oldF, newF, 10, nil)
	if !strings.Contains(sb.String(), "SLOWER") {
		t.Fatalf("+15%% not flagged at tol=10:\n%s", sb.String())
	}
}

// TestCompareGate: only gated benchmarks that regressed beyond the
// tolerance are reported for a non-zero exit.
func TestCompareGate(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot-4", NsPerOp: 1000},
		{Name: "BenchmarkCold-4", NsPerOp: 1000},
		{Name: "BenchmarkHotOK-4", NsPerOp: 1000},
	}}
	newF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot-4", NsPerOp: 1500},   // gated, regressed
		{Name: "BenchmarkCold-4", NsPerOp: 1500},  // regressed but not gated
		{Name: "BenchmarkHotOK-4", NsPerOp: 1050}, // gated, within tolerance
	}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`BenchmarkHot`))
	if len(regressed) != 1 || regressed[0] != "BenchmarkHot-4" {
		t.Fatalf("gate regressions = %v, want [BenchmarkHot-4]", regressed)
	}
	if r := Compare(&sb, oldF, newF, 60, regexp.MustCompile(`BenchmarkHot`)); len(r) != 0 {
		t.Fatalf("gate at tol=60 reported %v", r)
	}
}

// TestCompareGateRemoved: a gated benchmark missing from the new run fails
// the gate instead of silently passing.
func TestCompareGateRemoved(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkHot-4", NsPerOp: 1000}}}
	newF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkOther-4", NsPerOp: 1000}}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`BenchmarkHot`))
	if len(regressed) != 1 || regressed[0] != "BenchmarkHot-4 (removed)" {
		t.Fatalf("gate regressions = %v, want removed BenchmarkHot-4", regressed)
	}
}
