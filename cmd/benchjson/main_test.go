package main

import (
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkStreamingExtract/full-4         	    2016	    572534 ns/op	       0 B/op	       0 allocs/op
BenchmarkStreamingExtract/streamer-4     	   98241	     11443 ns/op	       0 B/op	       0 allocs/op
BenchmarkQueryBatch/serial-4             	      75	  16269036 ns/op	         4.082 sim-ms/query	 3382030 B/op	     105 allocs/op
BenchmarkBatchInference/workers=4-4      	     100	   9000000 ns/op	      7111 utt/s	     120 B/op	       3 allocs/op
PASS
ok  	repro	6.773s
`

func TestParse(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Benchmarks) != 4 {
		t.Fatalf("parsed %d benchmarks, want 4", len(f.Benchmarks))
	}
	if f.Context["goos"] != "linux" || !strings.Contains(f.Context["cpu"], "Xeon") {
		t.Fatalf("context not captured: %v", f.Context)
	}
	full := f.Benchmarks[0]
	if full.Name != "BenchmarkStreamingExtract/full-4" || full.Iters != 2016 || full.NsPerOp != 572534 {
		t.Fatalf("first benchmark misparsed: %+v", full)
	}
	if full.Metrics["allocs/op"] != 0 || full.Metrics["B/op"] != 0 {
		t.Fatalf("benchmem metrics misparsed: %+v", full.Metrics)
	}
	qb := f.Benchmarks[2]
	if qb.Metrics["sim-ms/query"] != 4.082 {
		t.Fatalf("custom metric misparsed: %+v", qb.Metrics)
	}
	if f.Benchmarks[3].Metrics["utt/s"] != 7111 {
		t.Fatalf("throughput metric misparsed: %+v", f.Benchmarks[3].Metrics)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok repro 0.1s\n")); err == nil {
		t.Fatal("empty bench output accepted")
	}
}

func TestCompare(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 1000},
		{Name: "BenchmarkB-4", NsPerOp: 2000},
		{Name: "BenchmarkGone-4", NsPerOp: 5},
	}}
	newF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkA-4", NsPerOp: 800},  // −20%: flagged faster
		{Name: "BenchmarkB-4", NsPerOp: 2300}, // +15%: flagged slower
		{Name: "BenchmarkNew-4", NsPerOp: 7},
	}}
	var sb strings.Builder
	Compare(&sb, oldF, newF, 10, nil)
	out := sb.String()
	for _, want := range []string{"(faster)", "(SLOWER)", "added", "removed", "-20.0%", "+15.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("compare output missing %q:\n%s", want, out)
		}
	}
}

// TestCompareTolerance: the flag threshold follows -tol, so a ±15% move is
// quiet at tol=20 and flagged at tol=10.
func TestCompareTolerance(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkB-4", NsPerOp: 2000}}}
	newF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkB-4", NsPerOp: 2300}}}
	var sb strings.Builder
	Compare(&sb, oldF, newF, 20, nil)
	if strings.Contains(sb.String(), "SLOWER") {
		t.Fatalf("+15%% flagged at tol=20:\n%s", sb.String())
	}
	sb.Reset()
	Compare(&sb, oldF, newF, 10, nil)
	if !strings.Contains(sb.String(), "SLOWER") {
		t.Fatalf("+15%% not flagged at tol=10:\n%s", sb.String())
	}
}

// TestCompareGate: only gated benchmarks that regressed beyond the
// tolerance are reported for a non-zero exit.
func TestCompareGate(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot-4", NsPerOp: 1000},
		{Name: "BenchmarkCold-4", NsPerOp: 1000},
		{Name: "BenchmarkHotOK-4", NsPerOp: 1000},
	}}
	newF := &File{Benchmarks: []Benchmark{
		{Name: "BenchmarkHot-4", NsPerOp: 1500},   // gated, regressed
		{Name: "BenchmarkCold-4", NsPerOp: 1500},  // regressed but not gated
		{Name: "BenchmarkHotOK-4", NsPerOp: 1050}, // gated, within tolerance
	}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`BenchmarkHot`))
	if len(regressed) != 1 || regressed[0] != "BenchmarkHot-4" {
		t.Fatalf("gate regressions = %v, want [BenchmarkHot-4]", regressed)
	}
	if r := Compare(&sb, oldF, newF, 60, regexp.MustCompile(`BenchmarkHot`)); len(r) != 0 {
		t.Fatalf("gate at tol=60 reported %v", r)
	}
}

// TestCompareMetrics: custom metrics ride the comparison with the direction
// inferred from their unit — "/op" units are costs, "/s" units are rates,
// unitless counts are informational, and the allocator metrics are omitted.
func TestCompareMetrics(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{
		Name: "BenchmarkHot-4", NsPerOp: 1000,
		Metrics: map[string]float64{
			"sim-ms/op": 4.0, "Gmac/s": 2.8, "shards": 4, "B/op": 64, "allocs/op": 2,
		},
	}}}
	newF := &File{Benchmarks: []Benchmark{{
		Name: "BenchmarkHot-4", NsPerOp: 1000,
		Metrics: map[string]float64{
			"sim-ms/op": 5.0, "Gmac/s": 2.0, "shards": 2, "B/op": 4096, "allocs/op": 9,
		},
	}}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`BenchmarkHot`))
	out := sb.String()
	// sim-ms/op +25% (cost up) and Gmac/s −29% (rate down) both gate; the
	// shards count halved but is unitless, so it prints without flagging.
	want := []string{"BenchmarkHot-4 [Gmac/s]", "BenchmarkHot-4 [sim-ms/op]"}
	if len(regressed) != 2 || regressed[0] != want[0] && regressed[1] != want[0] {
		t.Fatalf("gate regressions = %v, want %v", regressed, want)
	}
	for _, sub := range []string{"sim-ms/op", "Gmac/s", "shards"} {
		if !strings.Contains(out, "> "+sub) {
			t.Fatalf("metric row %q missing:\n%s", sub, out)
		}
	}
	if strings.Contains(out, "B/op") || strings.Contains(out, "allocs/op") {
		t.Fatalf("allocator metrics should be omitted:\n%s", out)
	}
	if strings.Count(out, "SLOWER") != 2 {
		t.Fatalf("want exactly 2 SLOWER flags (sim-ms/op, Gmac/s):\n%s", out)
	}
}

// TestCompareMetricsImprovement: rate increases and cost decreases flag as
// faster and never gate.
func TestCompareMetricsImprovement(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{
		Name: "BenchmarkHot-4", NsPerOp: 1000,
		Metrics: map[string]float64{"utt/s": 6000, "sim-ms/op": 5.0},
	}}}
	newF := &File{Benchmarks: []Benchmark{{
		Name: "BenchmarkHot-4", NsPerOp: 1000,
		Metrics: map[string]float64{"utt/s": 7100, "sim-ms/op": 4.0},
	}}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`.`))
	if len(regressed) != 0 {
		t.Fatalf("improvements gated: %v", regressed)
	}
	if strings.Count(sb.String(), "(faster)") != 2 {
		t.Fatalf("want 2 faster flags:\n%s", sb.String())
	}
}

// TestCompareGateRemoved: a gated benchmark missing from the new run fails
// the gate instead of silently passing.
func TestCompareGateRemoved(t *testing.T) {
	oldF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkHot-4", NsPerOp: 1000}}}
	newF := &File{Benchmarks: []Benchmark{{Name: "BenchmarkOther-4", NsPerOp: 1000}}}
	var sb strings.Builder
	regressed := Compare(&sb, oldF, newF, 10, regexp.MustCompile(`BenchmarkHot`))
	if len(regressed) != 1 || regressed[0] != "BenchmarkHot-4 (removed)" {
		t.Fatalf("gate regressions = %v, want removed BenchmarkHot-4", regressed)
	}
}
