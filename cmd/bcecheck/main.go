// Command bcecheck enforces the bounds-check-elimination contract on the
// kernel hot loops (`make bce-check`). It compiles the kernel packages with
// `-gcflags=-d=ssa/check_bce`, which makes the compiler print every bounds
// check that survives the prove pass, maps each finding to its enclosing
// function with go/parser, and fails if any finding lands in a function
// named by the checked-in clean list (bce_clean.txt at the repo root).
//
// The clean list is a contract, not a snapshot: the listed functions are the
// per-MAC / per-butterfly inner loops that were hand-restructured so the
// compiler proves every slice access in range (see ARCHITECTURE.md "Kernel
// tiers" for the idioms). A refactor that reintroduces a check into one of
// them fails CI with the exact file:line the compiler reported, instead of
// silently costing a branch per inner-loop iteration. Functions whose checks
// are data-dependent and irreducible (im2col replay, requantTail, the
// bit-reversal permutation) stay off the list on purpose.
//
// The tool also fails if a listed function no longer exists in its file, so
// renames cannot quietly strand the contract.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// finding is one surviving bounds check as reported by the compiler.
type finding struct {
	file string // path as printed, e.g. internal/tflm/gemm.go
	line int
	kind string // IsInBounds | IsSliceInBounds
}

var findingRE = regexp.MustCompile(`^(.+\.go):(\d+):\d+: Found (Is(?:Slice)?InBounds)$`)

func main() {
	cleanPath := flag.String("clean", "bce_clean.txt", "clean-list file: '<file>:<func>' lines that must compile check-free")
	pkgList := flag.String("pkgs", "./internal/tflm,./internal/dsp", "comma-separated packages to compile with -d=ssa/check_bce")
	flag.Parse()

	entries, err := readCleanList(*cleanPath)
	if err != nil {
		fatal(err)
	}
	findings, err := compileFindings(strings.Split(*pkgList, ","))
	if err != nil {
		fatal(err)
	}

	// Parse each file named by the clean list once and extract the line
	// ranges of its top-level functions.
	spansByFile := map[string]map[string][2]int{}
	bad := 0
	for _, e := range entries {
		spans, ok := spansByFile[e.file]
		if !ok {
			spans, err = funcSpans(e.file)
			if err != nil {
				fatal(err)
			}
			spansByFile[e.file] = spans
		}
		span, ok := spans[e.fn]
		if !ok {
			fmt.Fprintf(os.Stderr, "bcecheck: stale clean list: no function %q in %s\n", e.fn, e.file)
			bad++
			continue
		}
		for _, f := range findings {
			if f.file == e.file && f.line >= span[0] && f.line <= span[1] {
				fmt.Fprintf(os.Stderr, "bcecheck: %s:%d: %s in protected function %s\n", f.file, f.line, f.kind, e.fn)
				bad++
			}
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "bcecheck: FAIL: %d violation(s); restore the BCE idiom or consciously amend %s\n", bad, *cleanPath)
		os.Exit(1)
	}
	fmt.Printf("bcecheck: OK: %d protected functions check-free (%d surviving checks elsewhere are allowed)\n",
		len(entries), len(findings))
}

type cleanEntry struct {
	file string
	fn   string
}

// readCleanList parses the clean-list file: one '<file>:<func>' per line,
// '#' comments and blank lines ignored.
func readCleanList(path string) ([]cleanEntry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var entries []cleanEntry
	sc := bufio.NewScanner(f)
	ln := 0
	for sc.Scan() {
		ln++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		file, fn, ok := strings.Cut(line, ":")
		if !ok || file == "" || fn == "" {
			return nil, fmt.Errorf("bcecheck: %s:%d: want '<file>:<func>', got %q", path, ln, line)
		}
		entries = append(entries, cleanEntry{file: file, fn: fn})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) == 0 {
		return nil, fmt.Errorf("bcecheck: clean list %s is empty", path)
	}
	return entries, nil
}

// compileFindings builds pkgs with the check_bce debug flag and parses the
// compiler's findings. The build cache replays compiler diagnostics, so
// repeat runs are cheap. A build that fails for any other reason (the output
// contains more than findings) is surfaced verbatim.
func compileFindings(pkgs []string) ([]finding, error) {
	args := append([]string{"build", "-gcflags=-d=ssa/check_bce"}, pkgs...)
	out, err := exec.Command("go", args...).CombinedOutput()
	var findings []finding
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		m := findingRE.FindStringSubmatch(line)
		if m == nil {
			return nil, fmt.Errorf("bcecheck: go build failed:\n%s", out)
		}
		n, _ := strconv.Atoi(m[2])
		findings = append(findings, finding{file: m[1], line: n, kind: m[3]})
	}
	if err != nil {
		return nil, fmt.Errorf("bcecheck: go build failed:\n%s", out)
	}
	sort.Slice(findings, func(i, j int) bool {
		if findings[i].file != findings[j].file {
			return findings[i].file < findings[j].file
		}
		return findings[i].line < findings[j].line
	})
	return findings, nil
}

// funcSpans returns the [start, end] line range of every top-level function
// or method declared in the file, keyed by name.
func funcSpans(path string) (map[string][2]int, error) {
	fset := token.NewFileSet()
	af, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, fmt.Errorf("bcecheck: parsing %s: %w", path, err)
	}
	spans := map[string][2]int{}
	for _, d := range af.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		spans[fd.Name.Name] = [2]int{
			fset.Position(fd.Pos()).Line,
			fset.Position(fd.Body.End()).Line,
		}
	}
	return spans, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
