// Command omg-bench regenerates every table, figure and numeric claim of
// the paper's evaluation. Without flags it runs all experiments at full
// size and renders text tables; -md emits EXPERIMENTS.md-ready markdown.
//
// Usage:
//
//	omg-bench                   run everything (trains the model first)
//	omg-bench -run E1,E7        run selected experiments
//	omg-bench -quick            smaller corpus/keys, for smoke runs
//	omg-bench -list             list experiment IDs
//	omg-bench -md               markdown output
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/harness"
)

func main() {
	runList := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "reduced workloads (smaller corpus, smaller HE keys)")
	list := flag.Bool("list", false, "list experiments and exit")
	md := flag.Bool("md", false, "render markdown instead of text tables")
	quiet := flag.Bool("q", false, "suppress progress logging")
	flag.Parse()

	if *list {
		for _, e := range harness.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []harness.Experiment
	if *runList == "" {
		selected = harness.Experiments()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := harness.Lookup(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "omg-bench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	var logw io.Writer
	if !*quiet {
		logw = os.Stderr
	}
	ctx := harness.NewCtx(*quick, logw)
	failed := 0
	for _, e := range selected {
		table, err := e.Run(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "omg-bench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		if *md {
			fmt.Print(table.Markdown())
		} else {
			table.Render(os.Stdout)
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
