// Command omg-serve runs the netfront serving edge: a sharded multi-model
// core.Registry behind the length-prefixed wire protocol, on a TCP address
// and/or a Unix socket. It is the network face of the engine — the piece
// that lets external load (internal/netfront/client, the streaming-client
// example, BenchmarkNetServerThroughput) drive the same worker pools the
// in-process benchmarks measure.
//
// The models served are benchmark tiny_convs (random weights over the
// paper's geometry, tflm.BuildRandomTinyConv): omg-serve exercises the
// serving stack, not keyword accuracy. Swap in trained models by loading
// their OMGM bytes where buildModels is called.
//
// Usage:
//
//	omg-serve                                    serve "default" on 127.0.0.1:7071
//	omg-serve -models "kws=1:7,far=2:13"         two models; clients bind via hello
//	omg-serve -shards 2 -workers 4               2 shard servers × 4 workers per model
//	omg-serve -tenants "acme=10:256,trial=1:16"  weighted fair queueing + per-tenant caps
//	omg-serve -tcp :9000 -unix /tmp/omg.sock
//	omg-serve -drain 10s                         SIGTERM grace for in-flight streams
//
// Clients that skip the hello handshake are bound to -default-model (when
// set, or the sole model); requests name an unknown tenant fall under the
// default tenant policy.
//
// On SIGHUP every model is hot-swapped in place: the binary re-signs the
// current weights at the next version through an in-process vendor identity
// and drives core.Registry.Swap — zero accepted requests are dropped, and
// hello-bound clients observe the version bump on reconnect. (With trained
// models this is where new weights would be picked up from disk.)
//
// On SIGUSR1 the server prints a health dump: every model's per-shard
// circuit-breaker state, failure rate, rebuild count and worker liveness
// (core.Registry.Health), plus the count of failed SIGHUP swaps. The same
// snapshot is queryable over the wire via the client's Health method
// (FrameHealth). Breaker and overload control default on; tune them with
// -breaker-threshold/-breaker-cooldown/-overload-target or switch them off
// with -no-breaker/-no-overload.
//
// On SIGINT/SIGTERM the server drains gracefully: listeners close, quiet
// connections are released, and busy connections get the -drain grace to
// finish before being force-closed (ARCHITECTURE.md "Failure semantics").
// A second signal skips the grace and force-closes immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/tflm"
)

// serveConfig is the parsed flag set, separated from flag.Parse so the
// validation rules are table-testable.
type serveConfig struct {
	TCPAddr       string
	UnixPath      string
	Workers       int
	Queue         int
	MaxBatch      int
	BatchParallel int
	Shards        int
	Models        string // raw -models spec: "name=mul:seed,..."
	Tenants       string // raw -tenants spec: "name=weight:cap,..."
	DefaultModel  string
	Drain         time.Duration

	NoBreaker        bool
	BreakerThreshold int
	BreakerCooldown  time.Duration
	NoOverload       bool
	OverloadTarget   time.Duration
}

// modelSpec is one parsed -models entry: the tiny_conv geometry to build.
type modelSpec struct {
	mul  int
	seed int64
}

// usageError marks a validation failure that should print flag usage and
// exit 2 — operator error, not a runtime fault.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// validate checks the flag set and parses the -models and -tenants specs.
// Every rejection is a usageError naming the offending flag and entry.
func (c serveConfig) validate() (map[string]modelSpec, map[string]core.TenantConfig, error) {
	if c.TCPAddr == "" && c.UnixPath == "" {
		return nil, nil, usageError{"nothing to listen on (set -tcp and/or -unix)"}
	}
	if c.Workers < 0 || c.Queue < 0 || c.MaxBatch < 0 || c.BatchParallel < 0 {
		return nil, nil, usageError{"-workers, -queue, -max-batch, -batch-parallel must be >= 0"}
	}
	if c.Shards < 0 {
		return nil, nil, usageError{"-shards must be >= 0 (0 means 1)"}
	}
	if c.Drain < 0 {
		return nil, nil, usageError{"-drain must be >= 0"}
	}
	if c.BreakerThreshold < 0 || c.BreakerCooldown < 0 {
		return nil, nil, usageError{"-breaker-threshold and -breaker-cooldown must be >= 0 (0 = default)"}
	}
	if c.OverloadTarget < 0 {
		return nil, nil, usageError{"-overload-target must be >= 0 (0 = default)"}
	}

	models := map[string]modelSpec{}
	for _, entry := range splitSpec(c.Models) {
		name, rest, ok := strings.Cut(entry, "=")
		mulStr, seedStr, ok2 := strings.Cut(rest, ":")
		if !ok || !ok2 || name == "" {
			return nil, nil, usageError{fmt.Sprintf("-models entry %q: want name=mul:seed", entry)}
		}
		mul, err := strconv.Atoi(mulStr)
		if err != nil || mul < 1 {
			return nil, nil, usageError{fmt.Sprintf("-models entry %q: multiplier must be a positive integer", entry)}
		}
		seed, err := strconv.ParseInt(seedStr, 10, 64)
		if err != nil {
			return nil, nil, usageError{fmt.Sprintf("-models entry %q: seed must be an integer", entry)}
		}
		if _, dup := models[name]; dup {
			return nil, nil, usageError{fmt.Sprintf("-models: duplicate model %q", name)}
		}
		models[name] = modelSpec{mul: mul, seed: seed}
	}
	if len(models) == 0 {
		return nil, nil, usageError{"-models is empty: nothing to serve"}
	}
	if c.DefaultModel != "" {
		if _, ok := models[c.DefaultModel]; !ok {
			return nil, nil, usageError{fmt.Sprintf("-default-model %q is not in -models", c.DefaultModel)}
		}
	}

	tenants := map[string]core.TenantConfig{}
	for _, entry := range splitSpec(c.Tenants) {
		name, rest, ok := strings.Cut(entry, "=")
		weightStr, capStr, ok2 := strings.Cut(rest, ":")
		if !ok || !ok2 || name == "" {
			return nil, nil, usageError{fmt.Sprintf("-tenants entry %q: want name=weight:cap", entry)}
		}
		weight, err := strconv.Atoi(weightStr)
		if err != nil || weight < 1 {
			return nil, nil, usageError{fmt.Sprintf("-tenants entry %q: weight must be a positive integer", entry)}
		}
		qcap, err := strconv.Atoi(capStr)
		if err != nil || qcap < 1 {
			return nil, nil, usageError{fmt.Sprintf("-tenants entry %q: queue cap must be a positive integer", entry)}
		}
		if _, dup := tenants[name]; dup {
			return nil, nil, usageError{fmt.Sprintf("-tenants: duplicate tenant %q", name)}
		}
		tenants[name] = core.TenantConfig{Weight: weight, MaxQueue: qcap}
	}
	return models, tenants, nil
}

// splitSpec splits a comma-separated spec, dropping empty segments so
// trailing commas are harmless.
func splitSpec(s string) []string {
	var out []string
	for _, seg := range strings.Split(s, ",") {
		if seg = strings.TrimSpace(seg); seg != "" {
			out = append(out, seg)
		}
	}
	return out
}

// formatHealth renders the SIGUSR1 health dump: one line per shard with its
// breaker state, rebuild generation, failure rate and worker liveness, plus
// the running count of failed SIGHUP swaps. Split from the signal loop so
// the format is testable.
func formatHealth(health []core.ModelHealth, swapFailures uint64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "omg-serve: health (swap failures: %d)\n", swapFailures)
	for _, mh := range health {
		fmt.Fprintf(&b, "  %s v%d:\n", mh.Model, mh.Version)
		for _, sh := range mh.Shards {
			fmt.Fprintf(&b, "    shard %d: %s gen=%d rate=%.1f%% consec=%d trips=%d rebuilds=%d workers=%d/%d\n",
				sh.Shard, sh.State, sh.Gen, sh.FailureRate*100,
				sh.ConsecutiveFailures, sh.Trips, sh.Rebuilds, sh.Live, sh.Workers)
		}
	}
	return b.String()
}

func main() {
	var cfg serveConfig
	flag.StringVar(&cfg.TCPAddr, "tcp", "127.0.0.1:7071", "TCP listen address (empty disables)")
	flag.StringVar(&cfg.UnixPath, "unix", "", "Unix socket path (empty disables)")
	flag.IntVar(&cfg.Workers, "workers", 0, "workers per shard server (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.Queue, "queue", 0, "submission queue depth per shard (0 = 2×workers)")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 0, "max utterances per drained InvokeBatch (0 = default 8, 1 disables)")
	flag.IntVar(&cfg.BatchParallel, "batch-parallel", 0, "intra-batch shard parallelism per worker (0 = serial)")
	flag.IntVar(&cfg.Shards, "shards", 1, "shard servers per model (0 = 1)")
	flag.StringVar(&cfg.Models, "models", "default=1:7", "served models as name=mul:seed,... (tiny_conv width multiplier and weight seed)")
	flag.StringVar(&cfg.Tenants, "tenants", "", "tenant policies as name=weight:cap,... (DRR weight and queue cap; unnamed tenants get defaults)")
	flag.StringVar(&cfg.DefaultModel, "default-model", "", "model for hello-less connections (default: the sole model, else none)")
	flag.DurationVar(&cfg.Drain, "drain", 5*time.Second, "graceful-drain grace period on SIGTERM")
	flag.BoolVar(&cfg.NoBreaker, "no-breaker", false, "disable per-shard circuit breakers and the rebuild supervisor")
	flag.IntVar(&cfg.BreakerThreshold, "breaker-threshold", 0, "consecutive hard failures that trip a shard breaker (0 = default)")
	flag.DurationVar(&cfg.BreakerCooldown, "breaker-cooldown", 0, "base open-state cooldown before a breaker half-opens (0 = default)")
	flag.BoolVar(&cfg.NoOverload, "no-overload", false, "disable the queue-delay overload controller (per-tenant caps still apply)")
	flag.DurationVar(&cfg.OverloadTarget, "overload-target", 0, "target queue sojourn time before over-share tenants are shed (0 = default)")
	flag.Parse()

	specs, tenants, err := cfg.validate()
	if err != nil {
		fmt.Fprintf(os.Stderr, "omg-serve: %v\n", err)
		flag.Usage()
		os.Exit(2)
	}

	signer, err := core.NewSwapSigner(nil)
	if err != nil {
		log.Fatalf("omg-serve: vendor identity: %v", err)
	}
	models := map[string]core.ModelConfig{}
	built := map[string]*tflm.Model{}
	for name, spec := range specs {
		m, err := tflm.BuildRandomTinyConv(spec.mul, spec.seed)
		if err != nil {
			log.Fatalf("omg-serve: build model %q: %v", name, err)
		}
		built[name] = m
		models[name] = core.ModelConfig{
			Model:     m,
			Version:   1,
			VendorPub: signer.VendorPub(),
			Key:       signer.Key(),
		}
	}
	reg, err := core.NewRegistry(models, core.RegistryConfig{
		Shards: cfg.Shards,
		Server: core.ServerConfig{
			Workers:       cfg.Workers,
			Queue:         cfg.Queue,
			MaxBatch:      cfg.MaxBatch,
			BatchParallel: cfg.BatchParallel,
		},
		Tenants: tenants,
		Breaker: core.BreakerConfig{
			Disable:   cfg.NoBreaker,
			Threshold: cfg.BreakerThreshold,
			Cooldown:  cfg.BreakerCooldown,
		},
		Overload: core.OverloadConfig{
			Disable: cfg.NoOverload,
			Target:  cfg.OverloadTarget,
		},
	})
	if err != nil {
		log.Fatalf("omg-serve: registry: %v", err)
	}
	fe := netfront.NewFrontEndRegistry(reg, netfront.Config{DefaultModel: cfg.DefaultModel})

	var wg sync.WaitGroup
	serve := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			log.Fatalf("omg-serve: listen %s %s: %v", network, addr, err)
		}
		names := reg.Models()
		sort.Strings(names)
		fmt.Printf("omg-serve: listening on %s %s (models=%s shards=%d)\n",
			network, l.Addr(), strings.Join(names, ","), cfg.Shards)
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fe.Serve(l); err != netfront.ErrFrontEndClosed {
				log.Printf("omg-serve: %s listener: %v", network, err)
			}
		}()
	}
	if cfg.TCPAddr != "" {
		serve("tcp", cfg.TCPAddr)
	}
	if cfg.UnixPath != "" {
		os.Remove(cfg.UnixPath) // a stale socket file would fail the bind
		serve("unix", cfg.UnixPath)
	}

	// SIGHUP hot-swaps every model in place at the next version; SIGUSR1
	// dumps the health snapshot. Both run on this goroutine, serialized —
	// overlapping signals queue behind the channel buffers. A failed swap
	// is logged per model AND counted: the counter surfaces in every health
	// dump, so silent HUP failures are visible long after they scrolled by.
	var swapFailures atomic.Uint64
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	usr1 := make(chan os.Signal, 1)
	signal.Notify(usr1, syscall.SIGUSR1)
	stopHup := make(chan struct{})
	var hupWG sync.WaitGroup
	hupWG.Add(1)
	go func() {
		defer hupWG.Done()
		for {
			select {
			case <-stopHup:
				return
			case <-usr1:
				fmt.Print(formatHealth(reg.Health(), swapFailures.Load()))
				continue
			case <-hup:
			}
			for name, m := range built {
				v, _ := reg.ModelVersion(name)
				pkg, err := signer.Package(name, v+1, m)
				if err != nil {
					swapFailures.Add(1)
					log.Printf("omg-serve: package %q v%d: %v (swap failures: %d)", name, v+1, err, swapFailures.Load())
					continue
				}
				if err := reg.Swap(name, pkg); err != nil {
					swapFailures.Add(1)
					log.Printf("omg-serve: swap %q v%d: %v (swap failures: %d)", name, v+1, err, swapFailures.Load())
					continue
				}
				fmt.Printf("omg-serve: hot-swapped %q to v%d (zero dropped)\n", name, v+1)
			}
		}
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("omg-serve: draining (grace %v; signal again to force)\n", cfg.Drain)
	close(stopHup)
	// A second signal force-closes: Shutdown polls connection quiescence, so
	// an impatient operator can cut the grace short.
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			fmt.Println("omg-serve: forced shutdown")
			fe.Close()
		case <-done:
		}
	}()
	if err := fe.Shutdown(cfg.Drain); err != nil {
		log.Printf("omg-serve: drain: %v", err)
	}
	close(done)
	wg.Wait() // listeners gone
	hupWG.Wait()
	reg.Close() // drain accepted work
	if cfg.UnixPath != "" {
		os.Remove(cfg.UnixPath)
	}
}
