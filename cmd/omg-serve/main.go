// Command omg-serve runs the netfront serving edge: a persistent
// core.Server worker pool behind the length-prefixed wire protocol, on a
// TCP address and/or a Unix socket. It is the network face of the engine —
// the piece that lets external load (internal/netfront/client, the
// streaming-client example, BenchmarkNetServerThroughput) drive the same
// worker pool the in-process benchmarks measure.
//
// The model served is the benchmark tiny_conv (random weights over the
// paper's geometry, tflm.BuildRandomTinyConv): omg-serve exercises the
// serving stack, not keyword accuracy. Swap in a trained model by loading
// its OMGM bytes where buildModel is called.
//
// Usage:
//
//	omg-serve                          serve on 127.0.0.1:7071
//	omg-serve -tcp :9000 -unix /tmp/omg.sock
//	omg-serve -workers 8 -queue 64 -max-batch 16 -batch-parallel 2
//	omg-serve -drain 10s               SIGTERM grace for in-flight streams
//
// On SIGINT/SIGTERM the server drains gracefully: listeners close, quiet
// connections are released, and busy connections get the -drain grace to
// finish before being force-closed (ARCHITECTURE.md "Failure semantics").
// A second signal skips the grace and force-closes immediately.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/netfront"
	"repro/internal/tflm"
)

func main() {
	tcpAddr := flag.String("tcp", "127.0.0.1:7071", "TCP listen address (empty disables)")
	unixPath := flag.String("unix", "", "Unix socket path (empty disables)")
	workers := flag.Int("workers", 0, "core.Server worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "submission queue depth (0 = 2×workers)")
	maxBatch := flag.Int("max-batch", 0, "max utterances per drained InvokeBatch (0 = default 8, 1 disables)")
	batchParallel := flag.Int("batch-parallel", 0, "intra-batch shard parallelism per worker (0 = serial)")
	modelMul := flag.Int("model-mul", 1, "tiny_conv width multiplier of the served model")
	modelSeed := flag.Int64("model-seed", 7, "weight seed of the served model")
	drain := flag.Duration("drain", 5*time.Second, "graceful-drain grace period on SIGTERM")
	flag.Parse()

	if *tcpAddr == "" && *unixPath == "" {
		log.Fatal("omg-serve: nothing to listen on (set -tcp and/or -unix)")
	}

	model, err := tflm.BuildRandomTinyConv(*modelMul, *modelSeed)
	if err != nil {
		log.Fatalf("omg-serve: build model: %v", err)
	}
	srv, err := core.NewServer(model, core.ServerConfig{
		Workers:       *workers,
		Queue:         *queue,
		MaxBatch:      *maxBatch,
		BatchParallel: *batchParallel,
	})
	if err != nil {
		log.Fatalf("omg-serve: server: %v", err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})

	var wg sync.WaitGroup
	serve := func(network, addr string) {
		l, err := net.Listen(network, addr)
		if err != nil {
			log.Fatalf("omg-serve: listen %s %s: %v", network, addr, err)
		}
		fmt.Printf("omg-serve: listening on %s %s (workers=%d queue=%d)\n",
			network, l.Addr(), srv.Workers(), srv.QueueDepth())
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := fe.Serve(l); err != netfront.ErrFrontEndClosed {
				log.Printf("omg-serve: %s listener: %v", network, err)
			}
		}()
	}
	if *tcpAddr != "" {
		serve("tcp", *tcpAddr)
	}
	if *unixPath != "" {
		os.Remove(*unixPath) // a stale socket file would fail the bind
		serve("unix", *unixPath)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("omg-serve: draining (grace %v; signal again to force)\n", *drain)
	// A second signal force-closes: Shutdown polls connection quiescence, so
	// an impatient operator can cut the grace short.
	done := make(chan struct{})
	go func() {
		select {
		case <-sig:
			fmt.Println("omg-serve: forced shutdown")
			fe.Close()
		case <-done:
		}
	}()
	if err := fe.Shutdown(*drain); err != nil {
		log.Printf("omg-serve: drain: %v", err)
	}
	close(done)
	wg.Wait()   // listeners gone
	srv.Close() // drain accepted work
	if *unixPath != "" {
		os.Remove(*unixPath)
	}
}
