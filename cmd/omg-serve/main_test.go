package main

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// TestServeConfigValidate pins the flag validation table: each rejected
// configuration produces a usage error naming the offending flag, and
// accepted configurations parse into the expected model/tenant maps.
func TestServeConfigValidate(t *testing.T) {
	base := serveConfig{TCPAddr: "127.0.0.1:0", Models: "default=1:7", Drain: time.Second}

	cases := []struct {
		name    string
		mutate  func(*serveConfig)
		wantErr string // substring of the usage error; empty means valid
	}{
		{"defaults", func(c *serveConfig) {}, ""},
		{"no listeners", func(c *serveConfig) { c.TCPAddr = "" }, "nothing to listen on"},
		{"unix only", func(c *serveConfig) { c.TCPAddr = ""; c.UnixPath = "/tmp/omg.sock" }, ""},
		{"negative workers", func(c *serveConfig) { c.Workers = -1 }, "-workers"},
		{"negative shards", func(c *serveConfig) { c.Shards = -2 }, "-shards"},
		{"negative drain", func(c *serveConfig) { c.Drain = -time.Second }, "-drain"},
		{"empty models", func(c *serveConfig) { c.Models = "" }, "-models is empty"},
		{"models trailing comma", func(c *serveConfig) { c.Models = "kws=1:7," }, ""},
		{"models missing seed", func(c *serveConfig) { c.Models = "kws=1" }, "want name=mul:seed"},
		{"models missing name", func(c *serveConfig) { c.Models = "=1:7" }, "want name=mul:seed"},
		{"models zero mul", func(c *serveConfig) { c.Models = "kws=0:7" }, "multiplier"},
		{"models junk seed", func(c *serveConfig) { c.Models = "kws=1:x" }, "seed"},
		{"models duplicate", func(c *serveConfig) { c.Models = "kws=1:7,kws=2:9" }, "duplicate model"},
		{"two models", func(c *serveConfig) { c.Models = "kws=1:7,far=2:13" }, ""},
		{"default model known", func(c *serveConfig) { c.Models = "kws=1:7,far=2:13"; c.DefaultModel = "far" }, ""},
		{"default model unknown", func(c *serveConfig) { c.DefaultModel = "zzz" }, "-default-model"},
		{"tenants ok", func(c *serveConfig) { c.Tenants = "acme=10:256,trial=1:16" }, ""},
		{"tenants malformed", func(c *serveConfig) { c.Tenants = "acme" }, "want name=weight:cap"},
		{"tenants zero weight", func(c *serveConfig) { c.Tenants = "acme=0:16" }, "weight"},
		{"tenants zero cap", func(c *serveConfig) { c.Tenants = "acme=1:0" }, "queue cap"},
		{"tenants duplicate", func(c *serveConfig) { c.Tenants = "acme=1:16,acme=2:32" }, "duplicate tenant"},
		{"breaker knobs ok", func(c *serveConfig) { c.BreakerThreshold = 3; c.BreakerCooldown = time.Second }, ""},
		{"negative breaker threshold", func(c *serveConfig) { c.BreakerThreshold = -1 }, "-breaker-threshold"},
		{"negative breaker cooldown", func(c *serveConfig) { c.BreakerCooldown = -time.Second }, "-breaker-cooldown"},
		{"overload target ok", func(c *serveConfig) { c.OverloadTarget = 10 * time.Millisecond }, ""},
		{"negative overload target", func(c *serveConfig) { c.OverloadTarget = -time.Millisecond }, "-overload-target"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.mutate(&cfg)
			models, tenants, err := cfg.validate()
			if tc.wantErr != "" {
				if err == nil {
					t.Fatalf("validate accepted %+v", cfg)
				}
				var ue usageError
				if ok := errorsAs(err, &ue); !ok {
					t.Fatalf("validation error is not a usageError: %v", err)
				}
				if !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("error %q does not mention %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatalf("validate rejected %+v: %v", cfg, err)
			}
			if len(models) == 0 {
				t.Fatal("valid config parsed zero models")
			}
			_ = tenants
		})
	}

	// Parsed values survive the round trip, not just acceptance.
	cfg := base
	cfg.Models = "kws=2:13"
	cfg.Tenants = "acme=10:256"
	models, tenants, err := cfg.validate()
	if err != nil {
		t.Fatal(err)
	}
	if m := models["kws"]; m.mul != 2 || m.seed != 13 {
		t.Fatalf("model spec parsed wrong: %+v", m)
	}
	if ten := tenants["acme"]; ten.Weight != 10 || ten.MaxQueue != 256 {
		t.Fatalf("tenant config parsed wrong: %+v", ten)
	}
}

// errorsAs adapts errors.As to a concrete (non-pointer-receiver) target.
func errorsAs(err error, target *usageError) bool {
	ue, ok := err.(usageError)
	if ok {
		*target = ue
	}
	return ok
}

// TestFormatHealth pins the SIGUSR1 dump format: swap-failure count, model
// versions, and per-shard breaker lines all present.
func TestFormatHealth(t *testing.T) {
	out := formatHealth([]core.ModelHealth{{
		Model:   "kws",
		Version: 3,
		Shards: []core.ShardStatus{
			{Shard: 0, State: core.BreakerClosed, Gen: 2, FailureRate: 0.25, Rebuilds: 1, Workers: 4, Live: 4},
			{Shard: 1, State: core.BreakerOpen, ConsecutiveFailures: 7, Trips: 2, Workers: 4, Live: 0},
		},
	}}, 5)
	for _, want := range []string{
		"swap failures: 5",
		"kws v3",
		"shard 0: closed gen=2 rate=25.0% consec=0 trips=0 rebuilds=1 workers=4/4",
		"shard 1: open gen=0 rate=0.0% consec=7 trips=2 rebuilds=0 workers=0/4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("health dump missing %q:\n%s", want, out)
		}
	}
}
