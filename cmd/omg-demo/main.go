// Command omg-demo narrates one complete OFFLINE MODEL GUARD deployment on
// the simulated HiKey 960: device boot, the three protocol phases of §V,
// a few voice queries, and two live attack demonstrations (commodity-OS
// memory access and license revocation).
//
// By default the model has random weights (instant start); -trained runs
// the full training pipeline first so predictions are meaningful.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/omgcrypto"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
	"repro/internal/train"
)

func main() {
	trained := flag.Bool("trained", false, "train the model first (slower, real predictions)")
	flag.Parse()
	if err := run(*trained); err != nil {
		fmt.Fprintln(os.Stderr, "omg-demo:", err)
		os.Exit(1)
	}
}

func run(trained bool) error {
	say := func(format string, args ...any) { fmt.Printf(format+"\n", args...) }

	say("── building the cast ────────────────────────────────────────────")
	rng := omgcrypto.NewDRBG("omg-demo")
	root, err := omgcrypto.NewIdentity(rng, "device-vendor")
	if err != nil {
		return err
	}
	vendorID, err := omgcrypto.NewIdentity(rng, "acme-models")
	if err != nil {
		return err
	}

	var model *tflm.Model
	if trained {
		say("training tiny_conv on the synthetic Speech Commands corpus…")
		res, err := train.RunPipeline(train.DefaultPipeline())
		if err != nil {
			return err
		}
		say("  trained: float %.1f%%, quantized %.1f%% test accuracy",
			res.FloatTestAcc*100, res.QuantTestAcc*100)
		model = res.Model
	} else {
		if model, err = tflm.BuildRandomTinyConv(1, 42); err != nil {
			return err
		}
		say("using a random-weight tiny_conv (run with -trained for real accuracy)")
	}

	dev, err := core.NewDevice(core.DeviceConfig{
		Root:           root,
		Rand:           omgcrypto.NewDRBG("demo-device"),
		EnclaveKeyBits: 1024,
	})
	if err != nil {
		return err
	}
	vendor, err := core.NewVendor(rng, root.Public(), vendorID, model, 1)
	if err != nil {
		return err
	}
	user, err := core.NewUser(root.Public(), vendor.Public())
	if err != nil {
		return err
	}
	say("device: simulated HiKey 960 (%d cores), microphone assigned to the secure world", dev.SoC.NumCores())

	s := core.NewSession(dev, vendor, user, omgcrypto.NewDRBG("demo-session"))

	say("\n── phase I: preparation ─────────────────────────────────────────")
	t0 := dev.SoC.TotalBusy()
	if err := s.Prepare(vendor.Public()); err != nil {
		return err
	}
	m := s.App.Enclave().Measurement()
	say("enclave measured (%x…), attested to user and vendor, model provisioned encrypted", m[:6])
	say("phase took %v of simulated time; encrypted model parked on untrusted flash", round(dev.SoC.TotalBusy()-t0))

	say("\n── phase II: initialization ─────────────────────────────────────")
	t1 := dev.SoC.TotalBusy()
	if err := s.Initialize(); err != nil {
		return err
	}
	say("vendor licensed v%d; KU unwrapped and model decrypted inside the enclave (%v simulated)",
		s.App.Version(), round(dev.SoC.TotalBusy()-t1))

	say("\n── phase III: offline operation ─────────────────────────────────")
	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	for i, word := range []string{"yes", "stop", "left"} {
		dev.Speak(gen.Utterance(word, 5, i))
		encCore := s.App.Enclave().Core()
		encCore.ResetCycles()
		res, err := s.Query()
		if err != nil {
			return err
		}
		say("user says %-6q → enclave answers %-8q (%.2f ms simulated, prob %.2f)",
			word, speechcmd.LabelName(res.Label), ms(encCore.Elapsed()), res.Probs[res.Label])
	}

	say("\n── attack demo 1: the OS goes after the model ───────────────────")
	priv := s.App.Enclave().PrivBase()
	if err := dev.SoC.Read(dev.Sanctuary.OSCore(), priv, make([]byte, 16)); err != nil {
		say("commodity OS reads enclave memory → %v", err)
	} else {
		say("!! OS read enclave memory — isolation broken")
	}
	if err := dev.SoC.DMARead(priv, make([]byte, 16)); err != nil {
		say("malicious DMA master reads enclave memory → bus fault (NoDMA)")
	}

	say("\n── attack demo 2: license revocation ────────────────────────────")
	vendor.Revoke(user.VerifiedEnclaveKey())
	if err := s.App.Teardown(); err != nil {
		return err
	}
	app, err := core.LaunchEnclave(dev, vendor.Public(), omgcrypto.NewDRBG("demo-relaunch"))
	if err != nil {
		return err
	}
	s.App = app
	if err := s.Initialize(); err != nil {
		say("after revocation, re-initialization fails → %v", err)
	} else {
		say("!! revoked device obtained a key")
	}

	say("\ndemo complete: data stayed in the enclave, the model stayed encrypted at rest,")
	say("and the vendor kept control of the license — all offline after provisioning.")
	return nil
}

func round(d time.Duration) time.Duration { return d.Round(10 * time.Microsecond) }

func ms(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
