package main

import (
	"os"
	"testing"
	"time"

	"repro/internal/loadgen"
)

// testDevNull opens the discard sink for run's human-readable output.
func testDevNull(t *testing.T) *os.File {
	t.Helper()
	f, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// validCfg is a baseline config every validation test perturbs.
func validCfg() genConfig {
	return genConfig{
		Network:  "tcp",
		Inproc:   true,
		Rate:     100,
		Duration: time.Second,
		Conns:    1,
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*genConfig)
	}{
		{"addr and inproc", func(c *genConfig) { c.Addr = "x:1" }},
		{"neither addr nor inproc", func(c *genConfig) { c.Inproc = false }},
		{"zero rate", func(c *genConfig) { c.Rate = 0 }},
		{"unbounded schedule", func(c *genConfig) { c.Duration = 0 }},
		{"negative workers", func(c *genConfig) { c.Workers = -1 }},
		{"negative conns", func(c *genConfig) { c.Conns = -1 }},
		{"negative timeout", func(c *genConfig) { c.Timeout = -time.Second }},
		{"bad mix class", func(c *genConfig) { c.Mix = "turbo=1" }},
		{"bad mix weight", func(c *genConfig) { c.Mix = "oneshot=-1" }},
		{"mix not kv", func(c *genConfig) { c.Mix = "oneshot" }},
		{"tenant bad weight", func(c *genConfig) { c.Tenants = "acme=0" }},
		{"tenant duplicate", func(c *genConfig) { c.Tenants = "acme=1,acme=2" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := validCfg()
			tc.mut(&cfg)
			if _, _, err := cfg.validate(); err == nil {
				t.Fatalf("validate accepted %+v", cfg)
			}
		})
	}
}

func TestValidateAcceptsAndParses(t *testing.T) {
	cfg := validCfg()
	cfg.Mix = "oneshot=8, stream=1,batch=1"
	cfg.Tenants = "acme=10, trial=1, free"
	mix, tenants, err := cfg.validate()
	if err != nil {
		t.Fatal(err)
	}
	if mix != (loadgen.Mix{OneShot: 8, Stream: 1, Batch: 1}) {
		t.Fatalf("mix = %+v", mix)
	}
	want := []loadgen.TenantSpec{{Name: "acme", Weight: 10}, {Name: "trial", Weight: 1}, {Name: "free", Weight: 1}}
	if len(tenants) != len(want) {
		t.Fatalf("tenants = %+v", tenants)
	}
	for i := range want {
		if tenants[i] != want[i] {
			t.Fatalf("tenant %d = %+v, want %+v", i, tenants[i], want[i])
		}
	}
	// MaxArrivals alone also bounds the schedule.
	cfg = validCfg()
	cfg.Duration = 0
	cfg.MaxArrivals = 10
	if _, _, err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
}

// TestRunInproc drives the whole binary body against an in-process front
// end: a short open-loop run must complete without protocol errors.
func TestRunInproc(t *testing.T) {
	cfg := validCfg()
	cfg.Rate = 200
	cfg.Duration = 0
	cfg.MaxArrivals = 50
	cfg.Workers = 1
	if err := run(cfg, nil, testDevNull(t)); err != nil {
		t.Fatal(err)
	}
}
