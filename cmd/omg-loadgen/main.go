// Command omg-loadgen is the SLO measurement rig: an open-loop
// (Poisson-arrival) load generator that drives a netfront server — a live
// omg-serve or an in-process front end it spins up itself — with mixed
// one-shot / stream / batch traffic across weighted tenants, and reports
// tail latency (p50/p90/p99/p99.9 from log-linear histograms), BUSY/shed/
// retry rates and the Jain fairness index. Results can be written as
// benchjson-schema JSON so runs land in the same BENCH trajectory as the
// benchmarks (`benchjson -cmp` across saved runs).
//
// Open-loop matters: the arrival schedule is drawn up front from a seeded
// exponential process and never waits on completions, so a slow server
// faces the full offered load instead of quietly throttling the generator
// (the closed-loop failure mode that hides bad tails). See ARCHITECTURE.md
// "Tail latency & SLOs".
//
// Usage:
//
//	omg-loadgen -addr 127.0.0.1:7071 -rate 500 -duration 10s
//	omg-loadgen -inproc -rate 800 -duration 5s -mix "oneshot=8,stream=1,batch=1"
//	omg-loadgen -inproc -tenants "acme=10,trial=1" -rate 2000 -duration 5s
//	omg-loadgen -inproc -workers 1 -queue 8 -max-batch 4 -rate 1800 -json run.json
//	omg-loadgen -addr 127.0.0.1:7071 -hedge-delay 2ms -hedge-max 1 -rate 300
//
// With -inproc the generator builds a benchmark tiny_conv model and serves
// it from an in-process front end on a loopback listener (a registry-backed
// one when -tenants is set, so DRR fairness and overload control are live);
// -workers/-queue/-max-batch/-batch-parallel/-shards shape that server —
// the knobs the ARCHITECTURE.md tuning table sweeps.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// genConfig is the parsed flag set, separated from flag.Parse so the
// validation rules are table-testable.
type genConfig struct {
	Network string
	Addr    string
	Inproc  bool

	// In-process server shape (ignored with -addr).
	Workers       int
	Queue         int
	MaxBatch      int
	BatchParallel int
	Shards        int

	// Traffic shape.
	Rate        float64
	Duration    time.Duration
	MaxArrivals int
	Seed        int64
	Mix         string // raw -mix spec: "oneshot=8,stream=1,batch=1"
	Tenants     string // raw -tenants spec: "name=weight,..."
	Model       string
	Conns       int
	BatchSize   int
	StreamLen   int
	Timeout     time.Duration
	Retries     int
	HedgeDelay  time.Duration
	HedgeMax    int

	// Output.
	JSONPath string
	Name     string
}

// usageError marks a validation failure that should print flag usage and
// exit 2 — operator error, not a runtime fault.
type usageError struct{ msg string }

func (e usageError) Error() string { return e.msg }

// parseMix parses "oneshot=8,stream=1,batch=1" (any subset; weights are
// relative) into a loadgen.Mix. Empty means pure one-shot.
func parseMix(spec string) (loadgen.Mix, error) {
	var m loadgen.Mix
	if spec == "" {
		return m, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return m, usageError{fmt.Sprintf("-mix entry %q is not class=weight", part)}
		}
		w, err := strconv.ParseFloat(val, 64)
		if err != nil || w < 0 {
			return m, usageError{fmt.Sprintf("-mix entry %q has a bad weight", part)}
		}
		switch name {
		case "oneshot":
			m.OneShot = w
		case "stream":
			m.Stream = w
		case "batch":
			m.Batch = w
		default:
			return m, usageError{fmt.Sprintf("-mix class %q (want oneshot/stream/batch)", name)}
		}
	}
	return m, nil
}

// parseTenants parses "acme=10,trial=1" into ordered tenant specs; the
// weight shapes both the arrival share and (in-process) the DRR share.
func parseTenants(spec string) ([]loadgen.TenantSpec, error) {
	if spec == "" {
		return nil, nil
	}
	var out []loadgen.TenantSpec
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		w := 1.0
		if ok {
			var err error
			if w, err = strconv.ParseFloat(val, 64); err != nil || w <= 0 {
				return nil, usageError{fmt.Sprintf("-tenants entry %q has a bad weight", part)}
			}
		} else {
			name = part
		}
		if name == "" || seen[name] {
			return nil, usageError{fmt.Sprintf("-tenants entry %q is empty or duplicate", part)}
		}
		seen[name] = true
		out = append(out, loadgen.TenantSpec{Name: name, Weight: w})
	}
	return out, nil
}

// validate checks the flag set and parses the -mix and -tenants specs.
func (c genConfig) validate() (loadgen.Mix, []loadgen.TenantSpec, error) {
	if c.Inproc == (c.Addr != "") {
		return loadgen.Mix{}, nil, usageError{"set exactly one of -addr or -inproc"}
	}
	if c.Rate <= 0 {
		return loadgen.Mix{}, nil, usageError{"-rate must be > 0"}
	}
	if c.Duration <= 0 && c.MaxArrivals <= 0 {
		return loadgen.Mix{}, nil, usageError{"set -duration and/or -max-arrivals"}
	}
	if c.Workers < 0 || c.Queue < 0 || c.MaxBatch < 0 || c.BatchParallel < 0 || c.Shards < 0 {
		return loadgen.Mix{}, nil, usageError{"in-process server knobs must be >= 0"}
	}
	if c.Conns < 0 || c.BatchSize < 0 || c.StreamLen < 0 || c.Retries < 0 || c.HedgeMax < 0 {
		return loadgen.Mix{}, nil, usageError{"-conns, -batch-size, -stream-chunks, -retries, -hedge-max must be >= 0"}
	}
	if c.Timeout < 0 || c.HedgeDelay < 0 {
		return loadgen.Mix{}, nil, usageError{"-timeout and -hedge-delay must be >= 0"}
	}
	mix, err := parseMix(c.Mix)
	if err != nil {
		return loadgen.Mix{}, nil, err
	}
	tenants, err := parseTenants(c.Tenants)
	if err != nil {
		return loadgen.Mix{}, nil, err
	}
	return mix, tenants, nil
}

// inprocServe builds the tiny_conv model and an in-process front end on a
// loopback listener: a plain single-model server, or a registry (DRR +
// overload control) when tenants are declared. It returns the dial address
// and a shutdown func.
func inprocServe(cfg genConfig, tenants []loadgen.TenantSpec) (string, func(), error) {
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		return "", nil, err
	}
	sc := core.ServerConfig{
		Workers:       cfg.Workers,
		Queue:         cfg.Queue,
		MaxBatch:      cfg.MaxBatch,
		BatchParallel: cfg.BatchParallel,
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	var fe *netfront.FrontEnd
	var stopBackend func()
	if len(tenants) > 0 {
		tcfgs := make(map[string]core.TenantConfig, len(tenants))
		for _, t := range tenants {
			tcfgs[t.Name] = core.TenantConfig{Weight: int(t.Weight + 0.5)}
		}
		reg, err := core.NewRegistry(
			map[string]core.ModelConfig{"default": {Model: model, Version: 1}},
			core.RegistryConfig{Shards: cfg.Shards, Server: sc, Tenants: tcfgs},
		)
		if err != nil {
			l.Close()
			return "", nil, err
		}
		fe = netfront.NewFrontEndRegistry(reg, netfront.Config{})
		stopBackend = func() { reg.Close() }
	} else {
		srv, err := core.NewServer(model, sc)
		if err != nil {
			l.Close()
			return "", nil, err
		}
		fe = netfront.NewFrontEnd(srv, netfront.Config{})
		stopBackend = func() { srv.Close() }
	}
	go fe.Serve(l)
	return l.Addr().String(), func() {
		fe.Close()
		stopBackend()
	}, nil
}

// run is the testable main body: validate, serve (maybe), generate, report.
func run(cfg genConfig, stdout, stderr *os.File) error {
	mix, tenants, err := cfg.validate()
	if err != nil {
		return err
	}
	network, addr := cfg.Network, cfg.Addr
	if cfg.Inproc {
		a, stop, err := inprocServe(cfg, tenants)
		if err != nil {
			return fmt.Errorf("in-process server: %w", err)
		}
		defer stop()
		network, addr = "tcp", a
	}

	gen := speechcmd.NewGenerator(speechcmd.DefaultConfig())
	utt := gen.Utterance("yes", 3, 0)
	tenantNames := make([]string, len(tenants))
	for i, t := range tenants {
		tenantNames[i] = t.Name
	}
	target, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:      network,
		Addr:         addr,
		Tenants:      tenantNames,
		Model:        cfg.Model,
		Conns:        cfg.Conns,
		Utterance:    utt,
		BatchSize:    cfg.BatchSize,
		StreamChunks: cfg.StreamLen,
		Timeout:      cfg.Timeout,
		Retry:        client.RetryPolicy{Attempts: cfg.Retries},
		Hedge:        client.HedgePolicy{Delay: cfg.HedgeDelay, Max: cfg.HedgeMax},
		Seed:         cfg.Seed,
	})
	if err != nil {
		return err
	}
	defer target.Close()

	rep, err := loadgen.Run(loadgen.Config{
		Rate:        cfg.Rate,
		Duration:    cfg.Duration,
		MaxArrivals: cfg.MaxArrivals,
		Seed:        cfg.Seed,
		Mix:         mix,
		Tenants:     tenants,
	}, target)
	if err != nil {
		return err
	}

	printReport(stderr, rep)
	if cfg.JSONPath != "" {
		out := stdout
		if cfg.JSONPath != "-" {
			f, err := os.Create(cfg.JSONPath)
			if err != nil {
				return err
			}
			defer f.Close()
			out = f
		}
		if err := rep.WriteJSON(out, cfg.Name); err != nil {
			return err
		}
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d requests failed (first: %s)", rep.Errors, strings.Join(rep.ErrorSamples, "; "))
	}
	return nil
}

// printReport renders the human-readable run summary.
func printReport(w *os.File, rep *loadgen.Report) {
	fmt.Fprintf(w, "%s\n", rep)
	for c := loadgen.ClassOneShot; c <= loadgen.ClassBatch; c++ {
		if h := rep.Latency(c); h.Count() > 0 {
			fmt.Fprintf(w, "  %-8s %s\n", c, h)
		}
	}
	if rep.Hints.Count() > 0 {
		fmt.Fprintf(w, "  hints    %s\n", rep.Hints)
	}
	if len(rep.TenantDone) > 1 {
		names := make([]string, 0, len(rep.TenantDone))
		for n := range rep.TenantDone {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Fprintf(w, "  tenant %-10s done=%d\n", n, rep.TenantDone[n])
		}
	}
	s := rep.Client
	fmt.Fprintf(w, "  client   retries=%d redials=%d hedges=%d busy=%d\n", s.Retries, s.Redials, s.Hedges, s.Busy)
}

func main() {
	var cfg genConfig
	flag.StringVar(&cfg.Network, "network", "tcp", `dial network ("tcp" or "unix")`)
	flag.StringVar(&cfg.Addr, "addr", "", "server address to load (empty with -inproc)")
	flag.BoolVar(&cfg.Inproc, "inproc", false, "spin up an in-process front end instead of dialing -addr")
	flag.IntVar(&cfg.Workers, "workers", 0, "in-process: workers per shard engine (0 = GOMAXPROCS)")
	flag.IntVar(&cfg.Queue, "queue", 0, "in-process: engine queue depth (0 = 2x workers)")
	flag.IntVar(&cfg.MaxBatch, "max-batch", 0, "in-process: max utterances drained per worker wakeup (0 = default)")
	flag.IntVar(&cfg.BatchParallel, "batch-parallel", 0, "in-process: cores per drained batch (0 = default)")
	flag.IntVar(&cfg.Shards, "shards", 0, "in-process: shard engines per model (0 = 1)")
	flag.Float64Var(&cfg.Rate, "rate", 200, "mean arrival rate, requests/second (Poisson)")
	flag.DurationVar(&cfg.Duration, "duration", 5*time.Second, "schedule horizon (0 with -max-arrivals set)")
	flag.IntVar(&cfg.MaxArrivals, "max-arrivals", 0, "cap on issued arrivals (0 = unlimited)")
	flag.Int64Var(&cfg.Seed, "seed", 1, "schedule/jitter seed (same seed = same schedule)")
	flag.StringVar(&cfg.Mix, "mix", "", `traffic mix, e.g. "oneshot=8,stream=1,batch=1" (empty = all one-shot)`)
	flag.StringVar(&cfg.Tenants, "tenants", "", `weighted tenants, e.g. "acme=10,trial=1" (empty = anonymous)`)
	flag.StringVar(&cfg.Model, "model", "", "model id to bind connections to (empty = server default)")
	flag.IntVar(&cfg.Conns, "conns", 4, "connections per tenant")
	flag.IntVar(&cfg.BatchSize, "batch-size", 0, "utterances per batch request (0 = 4)")
	flag.IntVar(&cfg.StreamLen, "stream-chunks", 0, "sends per stream request (0 = 4)")
	flag.DurationVar(&cfg.Timeout, "timeout", 0, "per-one-shot deadline (0 = unbounded)")
	flag.IntVar(&cfg.Retries, "retries", 0, "one-shot retry attempts after the first")
	flag.DurationVar(&cfg.HedgeDelay, "hedge-delay", 0, "hedge one-shots after this long (0 = off)")
	flag.IntVar(&cfg.HedgeMax, "hedge-max", 0, "extra hedged attempts per request (0 = 1 when hedging)")
	flag.StringVar(&cfg.JSONPath, "json", "", `write benchjson-schema results here ("-" = stdout)`)
	flag.StringVar(&cfg.Name, "name", "Loadgen", "benchmark-style name for JSON entries")
	flag.Parse()

	if err := run(cfg, os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "omg-loadgen: %v\n", err)
		if _, ok := err.(usageError); ok {
			flag.Usage()
			os.Exit(2)
		}
		os.Exit(1)
	}
}
