package repro

// SLO harness tests (ISSUE 10): the open-loop load generator driving a real
// in-process front end over loopback TCP. These are the served-path
// counterparts to internal/loadgen's unit tests — they verify the harness
// against live wire traffic: the CI smoke run (make slo-smoke), the hedging
// attempt bound under thousands of hedged one-shots, and the overload
// controller's computed retry-after hints as observed from the client side.

import (
	"errors"
	"net"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/loadgen"
	"repro/internal/netfront"
	"repro/internal/netfront/client"
	"repro/internal/speechcmd"
	"repro/internal/tflm"
)

// sloUtt builds the standard test utterance.
func sloUtt(t *testing.T) []int16 {
	t.Helper()
	return speechcmd.NewGenerator(speechcmd.DefaultConfig()).Utterance("yes", 3, 0)
}

// sloServe stands up a single-model front end on loopback TCP.
func sloServe(t *testing.T, sc core.ServerConfig) string {
	t.Helper()
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(model, sc)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		t.Fatal(err)
	}
	fe := netfront.NewFrontEnd(srv, netfront.Config{})
	go fe.Serve(l)
	t.Cleanup(func() {
		fe.Close()
		srv.Close()
	})
	return l.Addr().String()
}

// TestSLOSmoke is the `make slo-smoke` CI gate: a one-second mixed-profile
// open-loop run against an in-process front end must complete requests and
// produce zero protocol errors.
func TestSLOSmoke(t *testing.T) {
	addr := sloServe(t, core.ServerConfig{Workers: 2, Queue: 64})
	target, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:   "tcp",
		Addr:      addr,
		Conns:     2,
		Utterance: sloUtt(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	rep, err := loadgen.Run(loadgen.Config{
		Rate:     300,
		Duration: time.Second,
		Seed:     1,
		Mix:      loadgen.Mix{OneShot: 8, Stream: 1, Batch: 1},
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatalf("no completions: %v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d protocol errors (%v): %v", rep.Errors, rep.ErrorSamples, rep)
	}
	if rep.Inflight != 0 {
		t.Fatalf("requests leaked past drain: %v", rep)
	}
}

// frameCountConn counts utterance frames written to the wire. The client
// writes each frame in a single Write call with the type byte at offset 4,
// so counting writes is counting wire attempts.
type frameCountConn struct {
	net.Conn
	utts *atomic.Uint64
}

// Write counts FrameUtterance writes and passes through.
func (c *frameCountConn) Write(b []byte) (int, error) {
	if len(b) >= netfront.HeaderLen && b[4] == netfront.FrameUtterance {
		c.utts.Add(1)
	}
	return c.Conn.Write(b)
}

// TestHedgedLoadAttemptBound drives thousands of hedged one-shots through
// an overloaded single-worker server and proves the hedging contract at
// the wire: total utterance frames never exceed offered × (1+Max), frames
// reconcile exactly with the client's hedge counter, and loser cancellation
// does not leak goroutines once the target closes.
func TestHedgedLoadAttemptBound(t *testing.T) {
	addr := sloServe(t, core.ServerConfig{Workers: 1, Queue: 128})
	const hedgeMax = 2
	var frames atomic.Uint64

	baseline := runtime.NumGoroutine()
	target, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:   "tcp",
		Addr:      addr,
		Conns:     4,
		Utterance: sloUtt(t),
		Hedge:     client.HedgePolicy{Delay: time.Millisecond, Max: hedgeMax},
		DialFunc: func(network, a string) (net.Conn, error) {
			nc, err := net.Dial(network, a)
			if err != nil {
				return nil, err
			}
			return &frameCountConn{Conn: nc, utts: &frames}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	rep, err := loadgen.Run(loadgen.Config{
		Rate:        3000,
		MaxArrivals: 2000,
		Seed:        17,
	}, target)
	if err != nil {
		t.Fatal(err)
	}

	wrote := frames.Load()
	if rep.Offered != 2000 {
		t.Fatalf("offered %d, want 2000", rep.Offered)
	}
	if max := rep.Offered * (1 + hedgeMax); wrote > max {
		t.Fatalf("%d utterance frames for %d requests exceeds the 1+Max=%d attempt bound (%d)",
			wrote, rep.Offered, 1+hedgeMax, max)
	}
	if rep.Client.Hedges == 0 {
		t.Fatalf("overloaded run fired no hedges: %v", rep)
	}
	// Every frame is either a request's first attempt or a counted hedge:
	// the wire count must reconcile exactly (no retries/redials configured).
	if want := rep.Offered + rep.Client.Hedges; wrote != want {
		t.Fatalf("frames %d != offered %d + hedges %d", wrote, rep.Offered, rep.Client.Hedges)
	}
	if rep.Client.Retries != 0 || rep.Client.Redials != 0 {
		t.Fatalf("unexpected retries/redials: %+v", rep.Client)
	}

	target.Close()
	// Loser cancellation and read loops must wind down to the baseline.
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+5 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// slowEngine is a registry shard with a fixed per-job service time: it
// makes the service-rate EWMA behind the overload controller's retry-after
// hints predictable.
type slowEngine struct{ svc time.Duration }

// SubmitFuncDeadline serves the job inline after the fixed service time.
func (e *slowEngine) SubmitFuncDeadline(samples []int16, deadline time.Time, fn func(core.Result)) error {
	time.Sleep(e.svc)
	fn(core.Result{Label: 1})
	return nil
}

// TrySubmitFuncDeadline behaves like SubmitFuncDeadline (never full).
func (e *slowEngine) TrySubmitFuncDeadline(samples []int16, deadline time.Time, fn func(core.Result)) error {
	return e.SubmitFuncDeadline(samples, deadline, fn)
}

// OpenStream is unsupported — this engine serves one-shots only.
func (e *slowEngine) OpenStream() (*core.Stream, error) {
	return nil, errors.New("slowEngine: no streams")
}

// Workers reports one worker.
func (e *slowEngine) Workers() int { return 1 }

// LiveWorkers reports one live worker.
func (e *slowEngine) LiveWorkers() int { return 1 }

// Close is a no-op; the engine holds no state.
func (e *slowEngine) Close() {}

// TestOverloadHintsObservedWithinClampBounds floods a registry tenant with
// a tiny queue cap through the wire and checks the retry-after hints the
// loadgen observes against the server's (backlog+1)×svc-EWMA computation:
// every hint within the [1ms, 2s] clamp, millisecond wire granularity, and
// — with a fixed 4ms shard service time making the EWMA predictable — a
// backlog-at-cap hint of at least (cap+1)×1ms.
func TestOverloadHintsObservedWithinClampBounds(t *testing.T) {
	model, err := tflm.BuildRandomTinyConv(1, 7)
	if err != nil {
		t.Fatal(err)
	}
	const queueCap = 4
	const svc = 4 * time.Millisecond
	reg, err := core.NewRegistry(
		map[string]core.ModelConfig{"m": {Model: model, Version: 1}},
		core.RegistryConfig{
			Engine:  func(*tflm.Model, core.ServerConfig) (core.Engine, error) { return &slowEngine{svc: svc}, nil },
			Tenants: map[string]core.TenantConfig{"t": {Weight: 1, MaxQueue: queueCap}},
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		reg.Close()
		t.Fatal(err)
	}
	fe := netfront.NewFrontEndRegistry(reg, netfront.Config{})
	go fe.Serve(l)
	t.Cleanup(func() {
		fe.Close()
		reg.Close()
	})

	target, err := loadgen.NewClientTarget(loadgen.ClientTargetConfig{
		Network:   "tcp",
		Addr:      l.Addr().String(),
		Tenants:   []string{"t"},
		Conns:     2,
		Utterance: sloUtt(t),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer target.Close()

	rep, err := loadgen.Run(loadgen.Config{
		Rate:     1500,
		Duration: 600 * time.Millisecond,
		Seed:     23,
		Tenants:  []loadgen.TenantSpec{{Name: "t"}},
	}, target)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d protocol errors (%v)", rep.Errors, rep.ErrorSamples)
	}
	if rep.Busy == 0 {
		t.Fatalf("flood produced no BUSY: %v", rep)
	}
	h := rep.Hints
	if h.Count() != rep.Busy+rep.Shed {
		t.Fatalf("hints %d != busy %d + shed %d — a rejection arrived without a computed hint",
			h.Count(), rep.Busy, rep.Shed)
	}
	if h.Min() < time.Millisecond {
		t.Fatalf("hint %v below the minRetryAfter clamp", h.Min())
	}
	if h.Max() > 2*time.Second {
		t.Fatalf("hint %v above the maxRetryAfter clamp", h.Max())
	}
	if h.Min()%time.Millisecond != 0 || h.Max()%time.Millisecond != 0 {
		t.Fatalf("hints not millisecond-granular on the wire: min=%v max=%v", h.Min(), h.Max())
	}
	// A rejection only happens with the tenant queue at cap, so backlog
	// >= queueCap and the computed hint is (backlog+1)×svcEWMA >= (cap+1)
	// × minRetryAfter even before the EWMA warms to the real 4ms service
	// interval. The largest observed hint must clear that floor.
	if want := time.Duration(queueCap+1) * time.Millisecond; h.Max() < want {
		t.Fatalf("max hint %v below the backlog floor %v — hints are not tracking (backlog+1)×svc", h.Max(), want)
	}
}
