# Build/test/verification entry points. `make ci` is the tier-1 gate:
# build + vet + gofmt cleanliness + tests.

GO ?= go

.PHONY: all build test vet fmt-check bench ci

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Hot-path and evaluation benchmarks with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

ci: build vet fmt-check test
	@echo "ci: OK"
