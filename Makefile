# Build/test/verification entry points. `make ci` is the tier-1 gate:
# build + vet + gofmt cleanliness + tests. `make help` lists everything.

GO ?= go
REV := $(shell git rev-parse --short HEAD)

.PHONY: all help build test vet fmt-check docs-check examples-check bce-check bench bench-save bench-cmp bench-gate bench-gate-smoke chaos slo-smoke ci

all: build

help:
	@echo "make build       compile all packages"
	@echo "make test        run the test suite"
	@echo "make vet         go vet"
	@echo "make fmt-check   fail if gofmt would change anything"
	@echo "make docs-check  fail on undocumented exported identifiers (cmd/docscheck)"
	@echo "make examples-check  build + vet the examples so they cannot rot silently"
	@echo "make bce-check   fail if bounds checks reappear in the kernel hot loops (bce_clean.txt)"
	@echo "make bench       run hot-path + evaluation benchmarks (-benchmem)"
	@echo "make bench-save  run benchmarks and save BENCH_<rev>.json (perf trajectory)"
	@echo "make bench-cmp   diff two saved runs: make bench-cmp BASE=BENCH_a.json HEAD=BENCH_b.json"
	@echo "make bench-gate  rerun the hot-path benchmarks and fail if any regressed >GATE_TOL% (default 25)"
	@echo "                 against the committed baseline (BASE=..., default: newest BENCH_*.json)"
	@echo "make bench-gate-smoke  one-iteration bench-gate (-benchtime 1x, huge tolerance): catches"
	@echo "                 deleted or broken gated benchmarks without timing anything"
	@echo "make chaos       fault-matrix chaos suite under -race -count=2 (netfront resilience gate)"
	@echo "make slo-smoke   one-second open-loop load run against a live front end (zero protocol errors)"
	@echo "make ci          tier-1 gate: build + vet + fmt-check + test + chaos + slo-smoke + bench-gate-smoke"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Godoc contract: every exported identifier in the audited engine packages
# carries a doc comment (see cmd/docscheck for the exact rules).
docs-check:
	$(GO) run ./cmd/docscheck

# Examples are real programs; building and vetting them in CI keeps them
# from rotting when the APIs they demonstrate move.
examples-check:
	$(GO) build ./examples/...
	$(GO) vet ./examples/...

# Bounds-check-elimination contract: the kernel inner loops listed in
# bce_clean.txt must compile with zero surviving bounds checks
# (cmd/bcecheck compiles internal/tflm + internal/dsp with
# -gcflags=-d=ssa/check_bce and maps the compiler's findings to functions).
bce-check:
	$(GO) run ./cmd/bcecheck

# Hot-path and evaluation benchmarks with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Snapshot the benchmarks as BENCH_<rev>.json so regressions are diffable
# PR over PR (cmd/benchjson parses the go test output to JSON).
bench-save:
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchjson -save BENCH_$(REV).json

# Compare two saved snapshots: make bench-cmp BASE=BENCH_old.json HEAD=BENCH_new.json
bench-cmp:
	@test -n "$(BASE)" -a -n "$(HEAD)" || { echo "usage: make bench-cmp BASE=old.json HEAD=new.json"; exit 2; }
	$(GO) run ./cmd/benchjson -cmp $(BASE) $(HEAD)

# Regression gate for the hot benchmarks: rerun them and diff against the
# committed baseline snapshot (newest BENCH_*.json unless BASE= overrides);
# a gated benchmark more than GATE_TOL% slower fails the target. The
# tolerance is generous because shared CI hosts are noisy — tighten locally
# with GATE_TOL=10.
GATE_DEFAULT_BENCHES ?= BenchmarkFFTFixed512|BenchmarkFrontendExtract|BenchmarkInterpreterInvoke|BenchmarkInvokeBatch|BenchmarkStreamingExtract|BenchmarkGEMMMicroKernel|BenchmarkNetServerThroughput|BenchmarkRegistryThroughput|BenchmarkRegistrySwapUnderLoad|BenchmarkRegistryDegraded
GATE_TOL ?= 25
# The SLO gate (ISSUE 10): BenchmarkServedTailLatency's median-of-3 p99
# under open-loop load. A p99 is an order statistic of a live queueing
# system on a shared 1-CPU host — run-to-run spread is ~1.6× even after
# the median-of-sub-runs smoothing — so its band polices order-of-
# magnitude tail blowups (a queueing regression at fixed offered rate
# multiplies p99), not percent-level drift.
GATE_SLO_BENCHES ?= BenchmarkServedTailLatency
GATE_SLO_TOL ?= 100
GATE_BENCHES ?= $(GATE_DEFAULT_BENCHES)|$(GATE_SLO_BENCHES)
# The inference and frontend hot loops get a tighter leash: the PR-5-era 15%
# InterpreterInvoke regression class must fail the gate, not slide under the
# generous noise tolerance above. InvokeBatch and StreamingExtract joined
# after the kernel-tier-2 pass (cache-blocked batching, fused frontend) so
# those wins cannot silently erode either.
GATE_TIGHT_BENCHES ?= BenchmarkInterpreterInvoke|BenchmarkInvokeBatch|BenchmarkStreamingExtract
GATE_TIGHT_TOL ?= 12
GATE_BENCHTIME ?=
bench-gate:
	@set -e; base="$(BASE)"; \
	if [ -z "$$base" ]; then base="$$(ls -t BENCH_*.json 2>/dev/null | head -1)"; fi; \
	test -n "$$base" || { echo "bench-gate: no BENCH_*.json baseline found (run make bench-save)"; exit 2; }; \
	echo "bench-gate: baseline $$base"; \
	scratch="$$(mktemp -d /tmp/bench_gate.XXXXXX)"; trap 'rm -rf "$$scratch"' EXIT; \
	$(GO) test -run '^$$' -bench '$(GATE_BENCHES)' $(if $(GATE_BENCHTIME),-benchtime $(GATE_BENCHTIME)) -benchmem . > "$$scratch/out.txt" || { cat "$$scratch/out.txt"; echo "bench-gate: benchmark run failed"; exit 1; }; \
	$(GO) run ./cmd/benchjson -save "$$scratch/head.json" < "$$scratch/out.txt"; \
	$(GO) run ./cmd/benchjson -cmp -tol $(GATE_TOL) -gate '$(GATE_DEFAULT_BENCHES)' "$$base" "$$scratch/head.json"; \
	$(GO) run ./cmd/benchjson -cmp -tol $(GATE_TIGHT_TOL) -gate '$(GATE_TIGHT_BENCHES)' "$$base" "$$scratch/head.json"; \
	$(GO) run ./cmd/benchjson -cmp -tol $(GATE_SLO_TOL) -gate '$(GATE_SLO_BENCHES)' "$$base" "$$scratch/head.json"

# CI smoke form of the gate: one iteration per gated benchmark with an
# effectively-infinite tolerance. Single-iteration timings are meaningless,
# so this does not police performance — it makes a PR that silently deletes
# or breaks a gated benchmark fail `make ci` instead of only `make
# bench-gate` (benchjson already fails on removed gated benchmarks).
bench-gate-smoke:
	@$(MAKE) --no-print-directory bench-gate GATE_BENCHTIME=1x GATE_TOL=100000 GATE_TIGHT_TOL=100000 GATE_SLO_TOL=100000

# Resilience gate: the fault-matrix chaos suite (faultconn profiles against
# a live front end — transport faults, swap storm, and the ISSUE 9
# panic-storm self-healing round) under the race detector, twice, plus the
# harness's own determinism tests. See ISSUE 6 / ARCHITECTURE.md "Failure
# semantics" and "Health, breakers & overload control".
chaos:
	$(GO) test -race -count=2 -run 'TestServerSurvivesFaultMatrix' ./internal/netfront/
	$(GO) test -race -count=2 ./internal/netfront/faultconn/

# SLO smoke: a one-second open-loop load-generator run against a live
# in-process front end must complete requests with zero protocol errors
# (slo_test.go). Keeps the whole loadgen → client → netfront → core path
# exercised on every CI run without timing anything.
slo-smoke:
	$(GO) test -run 'TestSLOSmoke' -count=1 .

ci: build vet fmt-check docs-check examples-check bce-check test chaos slo-smoke bench-gate-smoke
	@echo "ci: OK"
