# Build/test/verification entry points. `make ci` is the tier-1 gate:
# build + vet + gofmt cleanliness + tests. `make help` lists everything.

GO ?= go
REV := $(shell git rev-parse --short HEAD)

.PHONY: all help build test vet fmt-check bench bench-save bench-cmp ci

all: build

help:
	@echo "make build       compile all packages"
	@echo "make test        run the test suite"
	@echo "make vet         go vet"
	@echo "make fmt-check   fail if gofmt would change anything"
	@echo "make bench       run hot-path + evaluation benchmarks (-benchmem)"
	@echo "make bench-save  run benchmarks and save BENCH_<rev>.json (perf trajectory)"
	@echo "make bench-cmp   diff two saved runs: make bench-cmp BASE=BENCH_a.json HEAD=BENCH_b.json"
	@echo "make ci          tier-1 gate: build + vet + fmt-check + test"

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Hot-path and evaluation benchmarks with allocation reporting.
bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Snapshot the benchmarks as BENCH_<rev>.json so regressions are diffable
# PR over PR (cmd/benchjson parses the go test output to JSON).
bench-save:
	$(GO) test -run '^$$' -bench . -benchmem . | $(GO) run ./cmd/benchjson -save BENCH_$(REV).json

# Compare two saved snapshots: make bench-cmp BASE=BENCH_old.json HEAD=BENCH_new.json
bench-cmp:
	@test -n "$(BASE)" -a -n "$(HEAD)" || { echo "usage: make bench-cmp BASE=old.json HEAD=new.json"; exit 2; }
	$(GO) run ./cmd/benchjson -cmp $(BASE) $(HEAD)

ci: build vet fmt-check test
	@echo "ci: OK"
